// PBCH/MIB: encoding, mapping, blind decode, and the full acquisition
// chain (PSS/SSS search -> frame timing -> MIB -> bandwidth discovery).

#include <gtest/gtest.h>

#include "channel/awgn.hpp"
#include "dsp/rng.hpp"
#include "lte/enodeb.hpp"
#include "lte/pbch.hpp"
#include "lte/signal_map.hpp"
#include "lte/ue_rx.hpp"
#include "lte/ue_sync.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;

TEST(Mib, BitsRoundTrip) {
  lte::Mib mib;
  mib.bandwidth = lte::Bandwidth::kMHz10;
  mib.sfn = 789;
  const auto bits = lte::mib_to_bits(mib);
  const auto back = lte::bits_to_mib(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, mib);
}

TEST(Mib, InvalidBandwidthRejected) {
  std::array<std::uint8_t, 24> bits{};
  bits[0] = bits[1] = bits[2] = 1;  // bandwidth code 7
  EXPECT_FALSE(lte::bits_to_mib(bits).has_value());
}

TEST(Pbch, MapsOnlyIntoCentralRbsOfSymbols7To10) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz10;
  lte::ResourceGrid grid(cfg);
  lte::map_pbch(cfg, {}, grid);
  const std::size_t first = cfg.n_subcarriers() / 2 - 36;
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < cfg.n_subcarriers(); ++k) {
      const bool is_pbch = grid.type_at(l, k) == lte::ReType::kPbch;
      const bool in_region =
          (l >= 7 && l <= 10) && k >= first && k < first + 72;
      if (is_pbch) { EXPECT_TRUE(in_region) << l << "," << k; }
      if (!in_region) { EXPECT_FALSE(is_pbch); }
    }
  }
}

TEST(Pbch, CleanDecodeRecoversMib) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz5;
  cfg.n_id_1 = 77;
  lte::Mib mib;
  mib.bandwidth = cfg.bandwidth;
  mib.sfn = 321;
  lte::ResourceGrid grid(cfg);
  lte::map_pbch(cfg, mib, grid);
  const auto decoded = lte::decode_pbch(cfg, grid);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, mib);
}

TEST(Pbch, RepetitionCombiningSurvivesHeavyNoise) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz20;
  lte::Mib mib;
  mib.bandwidth = cfg.bandwidth;
  mib.sfn = 5;
  lte::ResourceGrid grid(cfg);
  lte::map_pbch(cfg, mib, grid);
  // 0 dB per-RE SNR: single QPSK symbols would fail, ~13x repetition
  // combining must not.
  dsp::Rng rng(3);
  for (const std::size_t l : lte::kPbchSymbolIndices) {
    for (const std::size_t k : lte::pbch_subcarriers(cfg, l)) {
      grid.at(l, k) += rng.complex_normal(1.0);
    }
  }
  const auto decoded = lte::decode_pbch(cfg, grid);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, mib);
}

TEST(Pbch, CorruptionFailsCrcInsteadOfLying) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz5;
  lte::ResourceGrid grid(cfg);
  lte::map_pbch(cfg, {}, grid);
  // Invert the whole region: every codeword bit flips.
  for (const std::size_t l : lte::kPbchSymbolIndices) {
    for (const std::size_t k : lte::pbch_subcarriers(cfg, l)) {
      grid.at(l, k) = -grid.at(l, k);
    }
  }
  EXPECT_FALSE(lte::decode_pbch(cfg, grid).has_value());
}

TEST(Acquisition, FullChainFindsCellTimingAndBandwidth) {
  // Blind UE: PSS/SSS search on the waveform, derive the frame start,
  // demodulate subframe 0, equalize by CRS, read the MIB.
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  ecfg.cell.n_id_1 = 44;
  ecfg.cell.n_id_2 = 2;
  ecfg.seed = 9;
  lte::Enodeb enb(ecfg);

  dsp::cvec stream;
  for (std::size_t sf = 0; sf < 10; ++sf) {
    const auto tx = enb.next_subframe();
    stream.insert(stream.end(), tx.samples.begin(), tx.samples.end());
  }
  const cf32 h{0.5f, -0.5f};
  for (auto& v : stream) v *= h;
  dsp::Rng noise(10);
  channel::add_awgn_snr(stream, dsp::Db{15.0}, noise);

  lte::CellSearcher searcher(ecfg.cell);
  const auto found = searcher.search(stream);
  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->cell_id, ecfg.cell.cell_id());

  // Frame start is 0 for this stream; demodulate subframe 0 and decode.
  lte::UeReceiver ue(ecfg.cell);
  const auto grid = ue.demodulate_grid(
      std::span<const cf32>(stream).subspan(found->frame_start));
  const auto est = ue.estimate_channel(grid, 0);
  lte::ResourceGrid equalized = grid;
  for (const std::size_t l : lte::kPbchSymbolIndices) {
    for (const std::size_t k : lte::pbch_subcarriers(ecfg.cell, l)) {
      const cf32 hh = est.h[k];
      const float p = std::norm(hh);
      if (p > 1e-12f) equalized.at(l, k) = grid.at(l, k) * std::conj(hh) / p;
    }
  }
  const auto mib = lte::decode_pbch(ecfg.cell, equalized);
  ASSERT_TRUE(mib.has_value());
  EXPECT_EQ(mib->bandwidth, lte::Bandwidth::kMHz5);
  EXPECT_EQ(mib->sfn, 0);
}

}  // namespace
