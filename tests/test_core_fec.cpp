// FEC on the backscatter link, end to end: the rate-1/2 convolutional
// code with soft Viterbi trades half the rate for coding gain.

#include <gtest/gtest.h>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"

namespace {

using namespace lscatter;

core::LinkConfig mid_range(std::uint64_t seed) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome, opt);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  cfg.geometry.enb_tag_ft = 16.0;
  cfg.geometry.tag_ue_ft = 13.0;
  return cfg;
}

TEST(LinkFec, ConvolutionalHalvesRateAtCloseRange) {
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome,
                                             {.seed = 17});
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  cfg.fec = core::Fec::kConvolutional;
  core::LinkSimulator sim(cfg);
  const auto m = sim.run(10);
  EXPECT_EQ(m.packets_detected, m.packets_sent);
  EXPECT_EQ(m.bit_errors, 0u);
  EXPECT_EQ(m.packets_ok, m.packets_sent);  // CRC survives with coding
  // Rate ~1/2 of the 13.5 Mbps uncoded rate.
  EXPECT_GT(m.throughput_bps(), 5.5e6);
  EXPECT_LT(m.throughput_bps(), 7.5e6);
}

TEST(LinkFec, CodingGainDeliversPacketsAtMidRange) {
  core::LinkMetrics uncoded;
  core::LinkMetrics coded;
  for (int d = 0; d < 4; ++d) {
    core::LinkConfig u = mid_range(200 + d);
    core::LinkConfig c = mid_range(200 + d);
    c.fec = core::Fec::kConvolutional;
    uncoded += core::LinkSimulator(u).run(15);
    coded += core::LinkSimulator(c).run(15);
  }
  // Where uncoded full-subframe packets essentially never pass CRC, the
  // coded link delivers most of them — and its *post-FEC* BER is far
  // below the raw floor.
  EXPECT_GT(coded.packet_delivery_ratio(),
            uncoded.packet_delivery_ratio() + 0.3);
  EXPECT_LT(coded.ber() * 10.0, uncoded.ber() + 1e-9);
}

}  // namespace
