// CRC: round-trips, error detection, and burst-error properties.

#include <gtest/gtest.h>

#include "dsp/crc.hpp"
#include "dsp/rng.hpp"

namespace {

using namespace lscatter::dsp;

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return rng.bits(n);
}

TEST(Crc, AttachAndCheckRoundTrip24) {
  const auto payload = random_bits(500, 1);
  const auto coded = attach_crc24a(payload);
  EXPECT_EQ(coded.size(), payload.size() + 24);
  EXPECT_TRUE(check_crc24a(coded));
}

TEST(Crc, AttachAndCheckRoundTrip16) {
  const auto payload = random_bits(77, 2);
  EXPECT_TRUE(check_crc16(attach_crc16(payload)));
}

TEST(Crc, AttachAndCheckRoundTrip32) {
  const auto payload = random_bits(1234, 3);
  EXPECT_TRUE(check_crc32(attach_crc32(payload)));
}

class CrcBitFlip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrcBitFlip, SingleBitFlipAlwaysDetected) {
  const auto payload = random_bits(200, 4);
  auto coded = attach_crc32(payload);
  const std::size_t pos = GetParam() % coded.size();
  coded[pos] ^= 1;
  EXPECT_FALSE(check_crc32(coded));
}

INSTANTIATE_TEST_SUITE_P(Positions, CrcBitFlip,
                         ::testing::Values(0, 1, 50, 100, 199, 200, 210,
                                           231));

TEST(Crc, DoubleBitFlipDetected) {
  const auto payload = random_bits(300, 5);
  auto coded = attach_crc24a(payload);
  coded[10] ^= 1;
  coded[200] ^= 1;
  EXPECT_FALSE(check_crc24a(coded));
}

TEST(Crc, BurstErrorsWithinCrcLengthDetected) {
  const auto payload = random_bits(400, 6);
  for (std::size_t width = 2; width <= 16; ++width) {
    auto coded = attach_crc16(payload);
    for (std::size_t i = 0; i < width; ++i) coded[37 + i] ^= 1;
    EXPECT_FALSE(check_crc16(coded)) << "burst width " << width;
  }
}

TEST(Crc, EmptyPayloadStillWorks) {
  const std::vector<std::uint8_t> empty;
  const auto coded = attach_crc16(empty);
  EXPECT_EQ(coded.size(), 16u);
  EXPECT_TRUE(check_crc16(coded));
}

TEST(Crc, AllZerosVsAllOnesDiffer) {
  const std::vector<std::uint8_t> zeros(64, 0);
  const std::vector<std::uint8_t> ones(64, 1);
  EXPECT_NE(crc24a(zeros), crc24a(ones));
}

TEST(Crc, RandomCorruptionDetectionRate) {
  // With a 32-bit CRC the chance of a random corruption passing is 2^-32;
  // across 2000 trials we must see zero false accepts.
  Rng rng(7);
  const auto payload = random_bits(256, 8);
  const auto good = attach_crc32(payload);
  int false_accepts = 0;
  for (int t = 0; t < 2000; ++t) {
    auto bad = good;
    const std::size_t flips = 1 + rng.uniform_int(10);
    for (std::size_t f = 0; f < flips; ++f) {
      bad[rng.uniform_int(static_cast<std::uint32_t>(bad.size()))] ^= 1;
    }
    if (bad != good && check_crc32(bad)) ++false_accepts;
  }
  EXPECT_EQ(false_accepts, 0);
}

}  // namespace
