// LTE sequences: Zadoff-Chu properties, PSS/SSS structure, Gold PRS, CRS.

#include <gtest/gtest.h>

#include <cmath>

#include "lte/sequences.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

TEST(ZadoffChu, ConstantAmplitude) {
  const cvec zc = lte::zadoff_chu(25, 63);
  for (const cf32 v : zc) {
    EXPECT_NEAR(std::abs(v), 1.0, 1e-5);
  }
}

TEST(ZadoffChu, ZeroCyclicAutocorrelation) {
  const std::size_t n = 63;
  const cvec zc = lte::zadoff_chu(29, n);
  for (std::size_t shift = 1; shift < n; ++shift) {
    dsp::cf64 acc{};
    for (std::size_t k = 0; k < n; ++k) {
      const cf32 a = zc[k];
      const cf32 b = zc[(k + shift) % n];
      acc += dsp::cf64{a.real(), a.imag()} * dsp::cf64{b.real(), -b.imag()};
    }
    EXPECT_LT(std::abs(acc), 1e-3) << "shift " << shift;
  }
}

TEST(Pss, ThreeRootsAreNearlyOrthogonal) {
  const cvec p0 = lte::pss_sequence(0);
  const cvec p1 = lte::pss_sequence(1);
  const cvec p2 = lte::pss_sequence(2);
  EXPECT_EQ(p0.size(), 62u);
  const auto xcorr = [](const cvec& a, const cvec& b) {
    return std::abs(dsp::inner_product(a, b)) / 62.0;
  };
  // ZC cross-correlation between coprime roots of a length-63 sequence is
  // 1/sqrt(63) ~ 0.126 per lag, but the punctured 62-element PSS version
  // lands near 0.2-0.4; anything clearly below the unit autocorrelation
  // keeps the detector unambiguous.
  EXPECT_NEAR(xcorr(p0, p0), 1.0, 1e-5);
  EXPECT_LT(xcorr(p0, p1), 0.45);
  EXPECT_LT(xcorr(p0, p2), 0.45);
  EXPECT_LT(xcorr(p1, p2), 0.45);
}

TEST(Pss, Roots25And29And34Conjugacy) {
  // Roots 29 and 34 are complex-conjugate-related (29 + 34 = 63): d_34 =
  // conj(d_29). A classic LTE property used by low-complexity detectors.
  const cvec p1 = lte::pss_sequence(1);  // root 29
  const cvec p2 = lte::pss_sequence(2);  // root 34
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p2[i].real(), p1[i].real(), 1e-4);
    EXPECT_NEAR(p2[i].imag(), -p1[i].imag(), 1e-4);
  }
}

TEST(Sss, ValuesAreBpsk) {
  const cvec d = lte::sss_sequence(101, 2, false);
  EXPECT_EQ(d.size(), 62u);
  for (const cf32 v : d) {
    EXPECT_NEAR(std::abs(v.real()), 1.0, 1e-6);
    EXPECT_NEAR(v.imag(), 0.0, 1e-6);
  }
}

TEST(Sss, Subframe0And5Differ) {
  const cvec sf0 = lte::sss_sequence(30, 1, false);
  const cvec sf5 = lte::sss_sequence(30, 1, true);
  int diffs = 0;
  for (std::size_t i = 0; i < sf0.size(); ++i) {
    if (sf0[i].real() != sf5[i].real()) ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST(Sss, DistinctCellIdsGiveDistinctSequences) {
  // Cross-correlations between different N_ID1 must be well below the
  // autocorrelation.
  const cvec a = lte::sss_sequence(10, 0, false);
  for (const std::uint16_t id1 : {std::uint16_t{0}, std::uint16_t{1},
                                  std::uint16_t{42}, std::uint16_t{99},
                                  std::uint16_t{167}}) {
    const cvec b = lte::sss_sequence(id1, 0, false);
    const double c = std::abs(dsp::inner_product(a, b)) / 62.0;
    if (id1 == 10) {
      EXPECT_NEAR(c, 1.0, 1e-6);
    } else {
      EXPECT_LT(c, 0.5) << "id1 " << id1;
    }
  }
}

TEST(Gold, FirstBitsMatchInitAndAreBalanced) {
  const auto c = lte::gold_sequence(0x12345, 4096);
  EXPECT_EQ(c.size(), 4096u);
  std::size_t ones = 0;
  for (const auto b : c) {
    ASSERT_LE(b, 1);
    ones += b;
  }
  // Gold sequences are balanced to within a small deviation.
  EXPECT_NEAR(static_cast<double>(ones), 2048.0, 150.0);
}

TEST(Gold, DifferentInitsDecorrelated) {
  const auto a = lte::gold_sequence(1, 2048);
  const auto b = lte::gold_sequence(2, 2048);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  EXPECT_NEAR(static_cast<double>(agree), 1024.0, 120.0);
}

TEST(Crs, ValuesAreUnitPowerQpsk) {
  const cvec r = lte::crs_values(37, 3, 0);
  EXPECT_EQ(r.size(), 2 * lte::kMaxRb);
  for (const cf32 v : r) {
    EXPECT_NEAR(std::abs(v), 1.0, 1e-5);
    EXPECT_NEAR(std::abs(v.real()), 1.0 / std::sqrt(2.0), 1e-5);
  }
}

TEST(Crs, DependsOnSlotSymbolAndCell) {
  const cvec base = lte::crs_values(37, 3, 0);
  EXPECT_NE(base, lte::crs_values(38, 3, 0));
  EXPECT_NE(base, lte::crs_values(37, 4, 0));
  EXPECT_NE(base, lte::crs_values(37, 3, 4));
}

}  // namespace
