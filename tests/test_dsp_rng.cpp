// RNG: determinism, distribution moments, stream independence.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "dsp/rng.hpp"

namespace {

using lscatter::dsp::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123, 5);
  Rng b(123, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIsInRangeWithCorrectMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 1e-2);
  EXPECT_NEAR(sum2 / n, 1.0, 2e-2);
}

TEST(Rng, ComplexNormalVariance) {
  Rng rng(13);
  double power = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    power += std::norm(rng.complex_normal(2.5));
  }
  EXPECT_NEAR(power / n, 2.5, 0.05);
}

TEST(Rng, UniformIntCoversRangeUnbiased) {
  Rng rng(17);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_int(7)]++;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 0.08 * n / 7.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, BitsAreBalanced) {
  Rng rng(29);
  const auto bits = rng.bits(100000);
  std::size_t ones = 0;
  for (const auto b : bits) {
    ASSERT_LE(b, 1);
    ones += b;
  }
  EXPECT_NEAR(static_cast<double>(ones), 50000.0, 1500.0);
}

TEST(DeriveSeed, PureFunctionOfInputs) {
  using lscatter::dsp::derive_seed;
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_EQ(derive_seed(42, 1000), derive_seed(42, 1000));
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(DeriveSeed, DistinctIndicesYieldDistinctSeeds) {
  using lscatter::dsp::derive_seed;
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    seen.insert(derive_seed(0xC0FFEE, i));
  }
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(DeriveSeed, AdjacentIndicesAvalanche) {
  // SplitMix64's finalizer should flip roughly half the output bits
  // between consecutive drop indices — a seed like base + k*index would
  // fail this badly and correlate the PCG streams it feeds.
  using lscatter::dsp::derive_seed;
  double total_flips = 0.0;
  const int n = 2048;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = derive_seed(99, static_cast<std::uint64_t>(i));
    const std::uint64_t b =
        derive_seed(99, static_cast<std::uint64_t>(i) + 1);
    total_flips += static_cast<double>(std::popcount(a ^ b));
  }
  EXPECT_NEAR(total_flips / n, 32.0, 1.5);
}

TEST(DeriveSeed, DerivedStreamsAreUncorrelated) {
  // Same statistic as ForkedStreamsAreIndependent: streams seeded from
  // adjacent drop indices must not co-move.
  using lscatter::dsp::derive_seed;
  Rng a(derive_seed(7, 0));
  Rng b(derive_seed(7, 1));
  double corr = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    corr += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  }
  EXPECT_NEAR(corr / n, 0.0, 2e-3);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  // Correlation between the forks should be negligible.
  double corr = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    corr += (child1.uniform() - 0.5) * (child2.uniform() - 0.5);
  }
  EXPECT_NEAR(corr / n, 0.0, 2e-3);
}

}  // namespace
