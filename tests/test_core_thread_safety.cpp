// Runtime lock-order validator tests (core/thread_safety.hpp, DESIGN.md
// §13). The validator must catch an AB/BA order inversion and a
// same-thread re-acquisition the first time they happen — without the
// schedule ever actually deadlocking — and must stay silent on the
// legitimate patterns the codebase uses (fft.cpp's sequential
// shared-then-exclusive double-checked cache, condition-variable waits,
// try_lock probing). Failures are made catchable with
// ScopedFailureMode(kThrow), the same idiom as test_contracts.cpp.

#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "core/contracts.hpp"
#include "core/thread_safety.hpp"

// The multi-mutex tests below deliberately record both orders of a lock
// pair; TSan's own deadlock detector flags that too (and, because
// libstdc++'s std::mutex never calls pthread_mutex_destroy, TSan keeps
// identifying destroyed test mutexes by their reused stack addresses,
// manufacturing false cycles across tests). The validator IS a
// lock-order detector, so running these probes under TSan is redundant —
// gate them out there; the single-mutex tests still run.
#if defined(__SANITIZE_THREAD__)
#define LSCATTER_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LSCATTER_TEST_UNDER_TSAN 1
#endif
#endif
#ifndef LSCATTER_TEST_UNDER_TSAN
#define LSCATTER_TEST_UNDER_TSAN 0
#endif

namespace {

using lscatter::core::ContractViolation;
using lscatter::core::contracts::FailureMode;
using lscatter::core::contracts::ScopedFailureMode;

#if LSCATTER_CHECKS_ENABLED

#if !LSCATTER_TEST_UNDER_TSAN

// Anti-neutering probe: if a build silently compiled the validator out
// (or someone stubbed the hooks), kEnabled flips or edges stop being
// recorded, and this suite fails instead of green-washing.
TEST(LockOrder, ValidatorIsCompiledIn) {
  static_assert(lscatter::lock_order::kEnabled,
                "lock-order validator must be active in checked builds");
  lscatter::Mutex a("test.active.a");
  lscatter::Mutex b("test.active.b");
  const std::size_t before = lscatter::lock_order::edge_count();
  {
    lscatter::LockGuard la(a);
    EXPECT_EQ(lscatter::lock_order::held_count(), 1u);
    lscatter::LockGuard lb(b);
    EXPECT_EQ(lscatter::lock_order::held_count(), 2u);
    // The nested acquisition must have recorded an a -> b edge.
    EXPECT_GT(lscatter::lock_order::edge_count(), before);
  }
  EXPECT_EQ(lscatter::lock_order::held_count(), 0u);
}

TEST(LockOrder, AbBaInversionThrows) {
  ScopedFailureMode guard(FailureMode::kThrow);
  lscatter::Mutex a("test.inv.a");
  lscatter::Mutex b("test.inv.b");
  {
    // Establish the order a -> b.
    lscatter::LockGuard la(a);
    lscatter::LockGuard lb(b);
  }
  // The opposite nesting closes the cycle: caught on acquisition, before
  // any schedule could actually deadlock.
  lscatter::LockGuard lb(b);
  EXPECT_THROW(a.lock(), ContractViolation);
  // The inversion fired before the underlying lock; a is still free.
  EXPECT_EQ(lscatter::lock_order::held_count(), 1u);
}

TEST(LockOrder, InversionAcrossThreeMutexesThrows) {
  ScopedFailureMode guard(FailureMode::kThrow);
  lscatter::Mutex a("test.chain.a");
  lscatter::Mutex b("test.chain.b");
  lscatter::Mutex c("test.chain.c");
  {
    lscatter::LockGuard la(a);
    lscatter::LockGuard lb(b);  // a -> b
  }
  {
    lscatter::LockGuard lb(b);
    lscatter::LockGuard lc(c);  // b -> c
  }
  // c -> a closes a transitive cycle (a -> b -> c -> a).
  lscatter::LockGuard lc(c);
  EXPECT_THROW(a.lock(), ContractViolation);
}

#endif  // !LSCATTER_TEST_UNDER_TSAN

TEST(LockOrder, SelfDeadlockThrows) {
  ScopedFailureMode guard(FailureMode::kThrow);
  lscatter::Mutex m("test.self");
  lscatter::LockGuard lock(m);
  EXPECT_THROW(m.lock(), ContractViolation);
}

TEST(LockOrder, SharedSelfDeadlockThrows) {
  ScopedFailureMode guard(FailureMode::kThrow);
  // shared -> exclusive upgrade on the SAME thread while the shared lock
  // is still held: a real deadlock on std::shared_mutex, caught here.
  lscatter::SharedMutex m("test.upgrade");
  lscatter::SharedLockGuard read(m);
  EXPECT_THROW(m.lock(), ContractViolation);
}

// The fft.cpp plan-cache pattern: take a shared lock, MISS, release it,
// then take the exclusive lock (upgrade-by-release, never in-place).
// Sequential acquisitions of one mutex are not a cycle; the validator
// must stay silent across repeats and interleavings with other locks.
TEST(LockOrder, SharedThenExclusiveSequentialIsClean) {
  ScopedFailureMode guard(FailureMode::kThrow);
  lscatter::SharedMutex cache("test.cache");
  for (int i = 0; i < 3; ++i) {
    {
      lscatter::SharedLockGuard read(cache);
      EXPECT_EQ(lscatter::lock_order::held_count(), 1u);
    }
    {
      lscatter::ExclusiveLockGuard write(cache);
      EXPECT_EQ(lscatter::lock_order::held_count(), 1u);
    }
  }
  EXPECT_EQ(lscatter::lock_order::held_count(), 0u);
}

#if !LSCATTER_TEST_UNDER_TSAN

TEST(LockOrder, TryLockRecordsNoEdges) {
  lscatter::Mutex a("test.try.a");
  lscatter::Mutex b("test.try.b");
  lscatter::LockGuard la(a);
  const std::size_t before = lscatter::lock_order::edge_count();
  // try_lock cannot block, hence cannot deadlock: no ordering edge.
  ASSERT_TRUE(b.try_lock());
  b.unlock();
  EXPECT_EQ(lscatter::lock_order::edge_count(), before);
}

TEST(LockOrder, DestructionForgetsOrderHistory) {
  ScopedFailureMode guard(FailureMode::kThrow);
  lscatter::Mutex b("test.reuse.b");
  const std::size_t before = lscatter::lock_order::edge_count();
  {
    lscatter::Mutex a("test.reuse.a");  // dies at scope end
    lscatter::LockGuard la(a);
    lscatter::LockGuard lb(b);  // a -> b recorded
  }
  // ~Mutex dropped every edge touching a, so a recycled stack address
  // (per-sweep PoolState) never inherits stale ordering history.
  EXPECT_EQ(lscatter::lock_order::edge_count(), before);
}

#endif  // !LSCATTER_TEST_UNDER_TSAN

// The held stack must stay exact across a condition-variable wait:
// CondVar is built on condition_variable_any over the wrapper UniqueLock
// precisely so the release/re-acquire inside wait() goes through the
// validator hooks.
TEST(LockOrder, CondVarWaitKeepsHeldStackExact) {
  lscatter::Mutex m("test.cv");
  lscatter::CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      lscatter::LockGuard lock(m);
      ready = true;
    }
    cv.notify_one();
  });
  {
    lscatter::UniqueLock lock(m);
    EXPECT_EQ(lscatter::lock_order::held_count(), 1u);
    while (!ready) cv.wait(lock);
    EXPECT_EQ(lscatter::lock_order::held_count(), 1u);
  }
  EXPECT_EQ(lscatter::lock_order::held_count(), 0u);
  producer.join();
}

#else  // !LSCATTER_CHECKS_ENABLED

TEST(LockOrder, ValidatorCompiledOut) {
  // -DLSCATTER_CHECKS=OFF: the wrappers must degrade to plain locks.
  EXPECT_FALSE(lscatter::lock_order::kEnabled);
  EXPECT_EQ(lscatter::lock_order::held_count(), 0u);
  lscatter::Mutex m;
  lscatter::LockGuard lock(m);
  EXPECT_EQ(lscatter::lock_order::held_count(), 0u);
}

#endif  // LSCATTER_CHECKS_ENABLED

}  // namespace
