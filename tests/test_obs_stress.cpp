// SpanSink concurrency stress: writers hammering record() through real
// ScopedSpans while readers concurrently snapshot() — the exact access
// pattern of the bench gate's report export racing live instrumentation.
// Run under -DLSCATTER_SANITIZE=thread (scripts/check.sh builds this
// target with TSan) to prove the mutex discipline; in plain builds it
// still checks the accounting invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/family.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace {

using namespace lscatter;

TEST(ObsStress, ConcurrentSpansAndSnapshots) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kSpansPerWriter = 3000;  // nested pairs: 2 events each

  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.set_capacity(256);  // small ring: force constant overwrites
  sink.clear();
  obs::Histogram& latency =
      obs::Registry::instance().histogram("test.stress.span.seconds");
  latency.reset();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots_taken{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const auto events = sink.snapshot();
        EXPECT_LE(events.size(), 256u);
        for (const obs::SpanEvent& ev : events) {
          ASSERT_NE(ev.name, nullptr);  // never a torn/blank slot
        }
        (void)sink.total_recorded();
        (void)sink.dropped();
        snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&latency] {
      for (int i = 0; i < kSpansPerWriter; ++i) {
        obs::ScopedSpan outer("test.stress.outer", &latency);
        obs::ScopedSpan inner("test.stress.inner");
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(sink.total_recorded(),
            static_cast<std::uint64_t>(kWriters) * kSpansPerWriter * 2);
  EXPECT_EQ(latency.count(),
            static_cast<std::uint64_t>(kWriters) * kSpansPerWriter);
  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_EQ(sink.snapshot().size(), 256u);

  sink.set_capacity(obs::SpanSink::kDefaultCapacity);
}

// Sharded-vs-unsharded merge equivalence under contention: 8 threads
// drive the same increment stream into a plain shared-atomic Counter and
// a ShardedCounter, with a reader thread concurrently merging the
// sharded cells mid-flight (the report-export race). Run under TSan in
// the nightly deep-tsan lane (--gtest_filter='ObsStress.Sharded*') to
// prove the relaxed-atomic cell discipline; in plain builds it locks the
// end-state equivalence.
TEST(ObsStress, ShardedMergeMatchesSharedCounterAtEightThreads) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kItersPerThread = 50000;

  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& shared = reg.counter("test.stress.merge.shared");
  obs::ShardedCounter& sharded =
      reg.sharded_counter("test.stress.merge.sharded");
  shared.reset();
  sharded.reset();

  std::atomic<bool> done{false};
  std::thread reader([&] {
    // Mid-flight merges must be monotonic and never torn past the total.
    std::uint64_t last = 0;
    constexpr std::uint64_t kTotal =
        static_cast<std::uint64_t>(kThreads) * kItersPerThread;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t v = sharded.value();
      EXPECT_GE(v, last);
      EXPECT_LE(v, kTotal);
      last = v;
      (void)reg.counter_value("test.stress.merge.sharded");
    }
  });

  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&] {
      // Cache the cell once per thread, as the macro does; every hit is
      // then an uncontended relaxed RMW on this thread's own line.
      std::atomic<std::uint64_t>& cell = sharded.cell();
      for (std::uint64_t i = 0; i < kItersPerThread; ++i) {
        shared.add(1);
        cell.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : team) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Quiescent merge equals the shared-atomic ground truth exactly.
  EXPECT_EQ(sharded.value(), shared.value());
  EXPECT_EQ(sharded.value(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(reg.counter_value("test.stress.merge.sharded"),
            shared.value());

  shared.reset();
  sharded.reset();
}

// Shard cells are claimed by dense thread ordinal: within a <=kShards
// team every thread must land on its own cacheline-aligned cell, or the
// "uncontended" claim is a lie.
TEST(ObsStress, ShardedCellsAreDistinctPerThread) {
  obs::ShardedCounter counter;
  constexpr int kThreads = 8;
  std::vector<std::atomic<std::uint64_t>*> cells(kThreads);
  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&counter, &cells, t] {
      cells[static_cast<std::size_t>(t)] = &counter.cell();
    });
  }
  for (auto& t : team) t.join();
  std::sort(cells.begin(), cells.end());
  EXPECT_EQ(std::unique(cells.begin(), cells.end()), cells.end());
  for (const auto* cell : cells) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(cell) % 64, 0u);
  }
}

// Registry reads racing sharded increments AND family cell registration:
// counter_value() walks the registry under its mutex while writer threads
// hammer their sharded cells and keep registering new family cells —
// which nests the registry mutex under the family mutex (the declared
// family -> registry lock rank, DESIGN.md §13). Run under TSan in the
// nightly deep-tsan lane (--gtest_filter='ObsStress.Sharded*'); in the
// default build the lock-order validator checks the rank stays acyclic
// on every nested acquisition.
TEST(ObsStress, ShardedIncrementsRaceRegistryReadsAndFamilyCells) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kItersPerThread = 20000;
  // 96 distinct labels against the 64-cell default cap: the overflow
  // path (which bumps a registry counter under the family lock) runs too.
  constexpr std::uint64_t kLabels = 96;

  obs::Registry& reg = obs::Registry::instance();
  obs::ShardedCounter& sharded =
      reg.sharded_counter("test.stress.race.sharded");
  sharded.reset();
  obs::CounterFamily family("test.stress.race.family", "slot");

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)reg.counter_value("test.stress.race.sharded");
      (void)family.size();
    }
  });

  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&] {
      std::atomic<std::uint64_t>& cell = sharded.cell();
      for (std::uint64_t i = 0; i < kItersPerThread; ++i) {
        cell.fetch_add(1, std::memory_order_relaxed);
        if (i % 64 == 0) {
          // family mutex -> registry mutex on a miss; cached-cell add on
          // a hit. Both paths race the reader's registry walk.
          family.cell((i / 64) % kLabels).add(1);
        }
      }
    });
  }
  for (auto& t : team) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(sharded.value(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(reg.counter_value("test.stress.race.sharded"),
            sharded.value());
  EXPECT_EQ(family.size(), obs::kDefaultMaxCells);
  sharded.reset();
}

TEST(ObsStress, SnapshotDuringCapacityChanges) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();
  std::atomic<bool> done{false};
  std::thread resizer([&] {
    for (int i = 0; i < 200; ++i) {
      sink.set_capacity(i % 2 == 0 ? 16 : 128);
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    obs::ScopedSpan s("test.stress.resize");
    (void)sink.snapshot();
  }
  resizer.join();
  sink.set_capacity(obs::SpanSink::kDefaultCapacity);
}

}  // namespace
