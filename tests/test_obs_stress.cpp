// SpanSink concurrency stress: writers hammering record() through real
// ScopedSpans while readers concurrently snapshot() — the exact access
// pattern of the bench gate's report export racing live instrumentation.
// Run under -DLSCATTER_SANITIZE=thread (scripts/check.sh builds this
// target with TSan) to prove the mutex discipline; in plain builds it
// still checks the accounting invariants.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace {

using namespace lscatter;

TEST(ObsStress, ConcurrentSpansAndSnapshots) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kSpansPerWriter = 3000;  // nested pairs: 2 events each

  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.set_capacity(256);  // small ring: force constant overwrites
  sink.clear();
  obs::Histogram& latency =
      obs::Registry::instance().histogram("test.stress.span.seconds");
  latency.reset();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots_taken{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const auto events = sink.snapshot();
        EXPECT_LE(events.size(), 256u);
        for (const obs::SpanEvent& ev : events) {
          ASSERT_NE(ev.name, nullptr);  // never a torn/blank slot
        }
        (void)sink.total_recorded();
        (void)sink.dropped();
        snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&latency] {
      for (int i = 0; i < kSpansPerWriter; ++i) {
        obs::ScopedSpan outer("test.stress.outer", &latency);
        obs::ScopedSpan inner("test.stress.inner");
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(sink.total_recorded(),
            static_cast<std::uint64_t>(kWriters) * kSpansPerWriter * 2);
  EXPECT_EQ(latency.count(),
            static_cast<std::uint64_t>(kWriters) * kSpansPerWriter);
  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_EQ(sink.snapshot().size(), 256u);

  sink.set_capacity(obs::SpanSink::kDefaultCapacity);
}

TEST(ObsStress, SnapshotDuringCapacityChanges) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();
  std::atomic<bool> done{false};
  std::thread resizer([&] {
    for (int i = 0; i < 200; ++i) {
      sink.set_capacity(i % 2 == 0 ? 16 : 128);
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    obs::ScopedSpan s("test.stress.resize");
    (void)sink.snapshot();
  }
  resizer.join();
  sink.set_capacity(obs::SpanSink::kDefaultCapacity);
}

}  // namespace
