// Physical-signal placement: PSS/SSS positions, guards, CRS lattice, and
// the sync-band geometry the tag's circuit depends on.

#include <gtest/gtest.h>

#include "lte/sequences.hpp"
#include "lte/signal_map.hpp"

namespace {

using namespace lscatter;

TEST(SignalMap, SyncSubframesAre0And5Periodically) {
  for (std::size_t sf = 0; sf < 40; ++sf) {
    EXPECT_EQ(lte::is_sync_subframe(sf), sf % 10 == 0 || sf % 10 == 5)
        << sf;
  }
}

class SyncBandPerBandwidth
    : public ::testing::TestWithParam<lte::Bandwidth> {};

TEST_P(SyncBandPerBandwidth, PssAlwaysOccupiesCentral62Subcarriers) {
  lte::CellConfig cfg;
  cfg.bandwidth = GetParam();
  cfg.n_id_2 = 1;
  lte::ResourceGrid grid(cfg);
  lte::map_sync_signals(cfg, 0, grid);

  const std::size_t first = lte::sync_band_first_subcarrier(cfg);
  // 62 used subcarriers, symmetric around the (absent) DC.
  EXPECT_EQ(first, cfg.n_subcarriers() / 2 - 31);
  std::size_t pss_count = 0;
  for (std::size_t k = 0; k < cfg.n_subcarriers(); ++k) {
    if (grid.type_at(lte::kPssSymbolIndex, k) == lte::ReType::kPss) {
      ++pss_count;
      EXPECT_GE(k, first);
      EXPECT_LT(k, first + 62);
    }
  }
  EXPECT_EQ(pss_count, 62u);

  // The PSS values match the N_ID2 sequence, and its occupied bandwidth
  // is 62 * 15 kHz = 0.93 MHz at every cell bandwidth (paper Fig. 6).
  const auto d = lte::pss_sequence(cfg.n_id_2);
  for (std::size_t n = 0; n < 62; ++n) {
    EXPECT_NEAR(std::abs(grid.at(lte::kPssSymbolIndex, first + n) - d[n]),
                0.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBandwidths, SyncBandPerBandwidth,
                         ::testing::ValuesIn(lte::kAllBandwidths));

TEST(SignalMap, GuardSubcarriersAroundSyncAreSilent) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz10;
  lte::ResourceGrid grid(cfg);
  lte::map_sync_signals(cfg, 5, grid);
  const std::size_t first = lte::sync_band_first_subcarrier(cfg);
  for (std::size_t g = 1; g <= 5; ++g) {
    EXPECT_EQ(grid.type_at(lte::kPssSymbolIndex, first - g),
              lte::ReType::kUnused);
    EXPECT_EQ(grid.at(lte::kPssSymbolIndex, first - g), dsp::cf32{});
    EXPECT_EQ(grid.type_at(lte::kSssSymbolIndex, first + 61 + g),
              lte::ReType::kUnused);
  }
}

TEST(SignalMap, NonSyncSubframeGetsNoSyncSignals) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz5;
  lte::ResourceGrid grid(cfg);
  lte::map_sync_signals(cfg, 3, grid);
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < cfg.n_subcarriers(); ++k) {
      EXPECT_EQ(grid.type_at(l, k), lte::ReType::kData);
    }
  }
}

TEST(SignalMap, SssDiffersBetweenSubframe0And5) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz5;
  cfg.n_id_1 = 21;
  lte::ResourceGrid g0(cfg);
  lte::ResourceGrid g5(cfg);
  lte::map_sync_signals(cfg, 0, g0);
  lte::map_sync_signals(cfg, 5, g5);
  const std::size_t first = lte::sync_band_first_subcarrier(cfg);
  int diffs = 0;
  for (std::size_t n = 0; n < 62; ++n) {
    if (std::abs(g0.at(lte::kSssSymbolIndex, first + n) -
                 g5.at(lte::kSssSymbolIndex, first + n)) > 1e-6f) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 10);
  // The PSS is identical in both (it carries no frame-position info).
  for (std::size_t n = 0; n < 62; ++n) {
    EXPECT_EQ(g0.at(lte::kPssSymbolIndex, first + n),
              g5.at(lte::kPssSymbolIndex, first + n));
  }
}

TEST(SignalMap, CrsSymbolsAreFourPerSubframe) {
  EXPECT_EQ(lte::kCrsSymbolIndices.size(), 4u);
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz3;
  lte::ResourceGrid grid(cfg);
  lte::map_crs(cfg, 2, grid);
  std::size_t crs = 0;
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < cfg.n_subcarriers(); ++k) {
      if (grid.type_at(l, k) == lte::ReType::kCrs) ++crs;
    }
  }
  EXPECT_EQ(crs, 4 * 2 * cfg.n_rb());
}

TEST(SignalMap, CrsValuesChangeEverySubframe) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz3;
  lte::ResourceGrid g1(cfg);
  lte::ResourceGrid g2(cfg);
  lte::map_crs(cfg, 1, g1);
  lte::map_crs(cfg, 2, g2);
  const auto pos = lte::crs_subcarriers(cfg, 0);
  int diffs = 0;
  for (const std::size_t k : pos) {
    if (std::abs(g1.at(0, k) - g2.at(0, k)) > 1e-6f) ++diffs;
  }
  EXPECT_GT(diffs, static_cast<int>(pos.size()) / 2);
}

}  // namespace
