// Scalar-vs-SIMD equivalence for the runtime-dispatched kernel layer
// (DESIGN.md §14). Every vector tier the host supports must reproduce
// the scalar reference: <= 1e-4 relative on the floating-point kernels
// (random + Zadoff-Chu inputs, every LTE numerology size) and bit-exact
// on the QAM hard decisions. Also pins the dispatch contract itself —
// LSCATTER_SIMD-style specs resolve to the named tier, and `auto` never
// picks a tier the CPU cannot run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/contracts.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "dsp/simd.hpp"
#include "lte/qam.hpp"
#include "lte/sequences.hpp"

namespace {

using namespace lscatter::dsp;

// Every tier this binary + CPU can actually run (always includes scalar).
std::vector<SimdTier> supported_tiers() {
  std::vector<SimdTier> tiers;
  for (const SimdTier t :
       {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
    if (simd_tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

// Restores the active tier on scope exit so a test flipping the global
// dispatch cannot leak into later tests in the same process.
struct TierGuard {
  SimdTier prev = simd_tier();
  ~TierGuard() { set_simd_tier(prev); }
};

// The FFT sizes of every LTE numerology the CellConfig table carries
// (1.4 through 20 MHz); 1536 exercises the Bluestein path and with it
// the cmul64 spectral-product kernel.
constexpr std::size_t kLteFftSizes[] = {128, 256, 512, 1024, 1536, 2048};

float max_rel_err(const cvec& ref, const cvec& got) {
  EXPECT_EQ(ref.size(), got.size());
  float scale = 0.0f;
  for (const cf32 v : ref) scale = std::max(scale, std::abs(v));
  EXPECT_GT(scale, 0.0f);
  float err = 0.0f;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err = std::max(err, std::abs(ref[i] - got[i]));
  }
  return err / scale;
}

cvec random_input(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvec v(n);
  for (auto& x : v) x = rng.complex_normal();
  return v;
}

// Zadoff-Chu input stretched/truncated to n: constant modulus with fast
// phase rotation — the structured input the receive chain actually feeds
// the FFT (PSS replicas), and a good catch for twiddle-sign mistakes.
cvec zc_input(std::size_t n) {
  const lscatter::dsp::cvec zc = lscatter::lte::zadoff_chu(25, 839);
  cvec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = zc[i % zc.size()];
  return v;
}

TEST(SimdDispatch, SpecResolvesNamedTier) {
  EXPECT_EQ(resolve_simd_tier("scalar"), SimdTier::kScalar);
  // Named vector tiers clamp down to the best supported tier not above
  // the name — on a host that supports them, that IS the named tier.
  const SimdTier sse2 = resolve_simd_tier("sse2");
  EXPECT_LE(static_cast<int>(sse2), static_cast<int>(SimdTier::kSse2));
  EXPECT_TRUE(simd_tier_supported(sse2));
  const SimdTier avx2 = resolve_simd_tier("avx2");
  EXPECT_LE(static_cast<int>(avx2), static_cast<int>(SimdTier::kAvx2));
  EXPECT_TRUE(simd_tier_supported(avx2));
  if (simd_tier_supported(SimdTier::kSse2)) {
    EXPECT_EQ(sse2, SimdTier::kSse2);
  }
  if (simd_tier_supported(SimdTier::kAvx2)) {
    EXPECT_EQ(avx2, SimdTier::kAvx2);
  }
}

TEST(SimdDispatch, AutoNeverPicksUnsupportedTier) {
  for (const char* spec : {static_cast<const char*>(nullptr), "", "auto"}) {
    const SimdTier t = resolve_simd_tier(spec);
    EXPECT_EQ(t, simd_best_supported());
    EXPECT_TRUE(simd_tier_supported(t));
  }
}

TEST(SimdDispatch, UnknownSpecIsAContractViolation) {
  const lscatter::core::contracts::ScopedFailureMode mode(
      lscatter::core::contracts::FailureMode::kThrow);
  EXPECT_THROW(resolve_simd_tier("avx512"),
               lscatter::core::ContractViolation);
}

TEST(SimdDispatch, TablesReportTheirOwnTier) {
  for (const SimdTier t : supported_tiers()) {
    EXPECT_EQ(simd_kernels(t).tier, t);
    EXPECT_NE(simd_kernels(t).fft_radix2, nullptr);
    EXPECT_NE(simd_kernels(t).corr_mac, nullptr);
    EXPECT_NE(simd_kernels(t).qam_demap64, nullptr);
  }
}

TEST(SimdDispatch, SetTierInstallsSupportedTierAndSticks) {
  TierGuard guard;
  for (const SimdTier t : supported_tiers()) {
    EXPECT_EQ(set_simd_tier(t), t);
    EXPECT_EQ(simd_tier(), t);
    EXPECT_EQ(simd_kernels().tier, t);
  }
}

TEST(SimdEquivalence, FftForwardAndInverseAtEveryLteSize) {
  TierGuard guard;
  for (const std::size_t n : kLteFftSizes) {
    // Scalar reference spectra.
    set_simd_tier(SimdTier::kScalar);
    const cvec rand_in = random_input(n, 0x5eed0000 + n);
    const cvec zc_in = zc_input(n);
    const cvec rand_ref = fft(rand_in);
    const cvec zc_ref = fft(zc_in);
    const cvec rt_ref = ifft(rand_ref);

    for (const SimdTier t : supported_tiers()) {
      set_simd_tier(t);
      EXPECT_LE(max_rel_err(rand_ref, fft(rand_in)), 1e-4f)
          << "tier=" << to_string(t) << " n=" << n << " (random)";
      EXPECT_LE(max_rel_err(zc_ref, fft(zc_in)), 1e-4f)
          << "tier=" << to_string(t) << " n=" << n << " (Zadoff-Chu)";
      EXPECT_LE(max_rel_err(rt_ref, ifft(rand_ref)), 1e-4f)
          << "tier=" << to_string(t) << " n=" << n << " (inverse)";
    }
  }
}

TEST(SimdEquivalence, CorrMacMatchesScalarIncludingRaggedTails) {
  // Lengths straddling every vector width and remainder combination.
  for (const std::size_t m : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 64u, 513u}) {
    const cvec s = random_input(m, 0xc0de00 + m);
    const cvec p = zc_input(m);
    double ref_r = 0.0, ref_i = 0.0;
    simd_kernels(SimdTier::kScalar)
        .corr_mac(s.data(), p.data(), m, &ref_r, &ref_i);
    const double scale = std::max(1.0, std::hypot(ref_r, ref_i));
    for (const SimdTier t : supported_tiers()) {
      double r = 0.0, i = 0.0;
      simd_kernels(t).corr_mac(s.data(), p.data(), m, &r, &i);
      EXPECT_NEAR(r, ref_r, 1e-4 * scale)
          << "tier=" << to_string(t) << " m=" << m;
      EXPECT_NEAR(i, ref_i, 1e-4 * scale)
          << "tier=" << to_string(t) << " m=" << m;
    }
  }
}

TEST(SimdEquivalence, Cmul64MatchesScalar) {
  for (const std::size_t n : {1u, 2u, 3u, 6u, 128u, 1536u}) {
    Rng rng(0xab00 + n);
    std::vector<cf64> x(n), h(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = cf64{rng.normal(), rng.normal()};
      h[i] = cf64{rng.normal(), rng.normal()};
    }
    std::vector<cf64> ref = x;
    simd_kernels(SimdTier::kScalar).cmul64(ref.data(), h.data(), n);
    for (const SimdTier t : supported_tiers()) {
      std::vector<cf64> got = x;
      simd_kernels(t).cmul64(got.data(), h.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(ref[i] - got[i]), 0.0, 1e-10)
            << "tier=" << to_string(t) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdEquivalence, ConjMulSumAbsAndPatternSumsMatchScalar) {
  for (const std::size_t n : {1u, 3u, 4u, 7u, 8u, 100u, 1023u}) {
    const cvec a = random_input(n, 0x11a0 + n);
    const cvec b = random_input(n, 0x22b0 + n);
    Rng prng(0x33c0 + n);
    std::vector<std::uint8_t> pattern(n);
    for (auto& v : pattern) v = static_cast<std::uint8_t>(prng.next_u32() & 1);

    const SimdKernels& sc = simd_kernels(SimdTier::kScalar);
    cvec z_ref(n);
    sc.conj_mul(a.data(), b.data(), z_ref.data(), n);
    double sr = 0, si = 0, sabs = 0;
    sc.sum_abs(a.data(), n, &sr, &si, &sabs);
    double pr = 0, pi = 0, ar = 0, ai = 0, pabs = 0;
    sc.pattern_sums(a.data(), pattern.data(), n, &pr, &pi, &ar, &ai, &pabs);

    for (const SimdTier t : supported_tiers()) {
      const SimdKernels& k = simd_kernels(t);
      cvec z(n);
      k.conj_mul(a.data(), b.data(), z.data(), n);
      EXPECT_LE(max_rel_err(z_ref, z), 1e-4f) << "tier=" << to_string(t);

      double r = 0, i = 0, abs_sum = 0;
      k.sum_abs(a.data(), n, &r, &i, &abs_sum);
      const double tol = 1e-4 * std::max(1.0, sabs);
      EXPECT_NEAR(r, sr, tol) << "tier=" << to_string(t) << " n=" << n;
      EXPECT_NEAR(i, si, tol) << "tier=" << to_string(t) << " n=" << n;
      EXPECT_NEAR(abs_sum, sabs, tol)
          << "tier=" << to_string(t) << " n=" << n;

      double gr = 0, gi = 0, hr = 0, hi = 0, gabs = 0;
      k.pattern_sums(a.data(), pattern.data(), n, &gr, &gi, &hr, &hi, &gabs);
      EXPECT_NEAR(gr, pr, tol) << "tier=" << to_string(t) << " n=" << n;
      EXPECT_NEAR(gi, pi, tol) << "tier=" << to_string(t) << " n=" << n;
      EXPECT_NEAR(hr, ar, tol) << "tier=" << to_string(t) << " n=" << n;
      EXPECT_NEAR(hi, ai, tol) << "tier=" << to_string(t) << " n=" << n;
      EXPECT_NEAR(gabs, pabs, tol) << "tier=" << to_string(t) << " n=" << n;
    }
  }
}

TEST(SimdEquivalence, QamHardDecisionsAreBitExactAcrossTiers) {
  using lscatter::lte::Modulation;
  const std::size_t n = 997;  // odd on purpose: exercises every tail path

  for (const Modulation m : {Modulation::kQpsk, Modulation::kQam16,
                             Modulation::kQam64}) {
    const std::size_t bps = lscatter::lte::bits_per_symbol(m);
    // Noisy constellation points plus adversarial exact values: origin,
    // signed zeros, and symbols sitting exactly on decision thresholds.
    Rng rng(0x9a9a + bps);
    std::vector<std::uint8_t> tx_bits(n * bps);
    for (auto& v : tx_bits) v = static_cast<std::uint8_t>(rng.next_u32() & 1);
    cvec sym = lscatter::lte::qam_modulate(tx_bits, m);
    for (auto& v : sym) v += rng.complex_normal(0.05);
    sym[0] = cf32{0.0f, 0.0f};
    sym[1] = cf32{-0.0f, 0.0f};
    sym[2] = cf32{0.0f, -0.0f};
    sym[3] = cf32{2.0f / 3.16227766016837952f, -2.0f / 3.16227766016837952f};
    sym[4] = cf32{4.0f / 6.48074069840786023f, 2.0f / 6.48074069840786023f};

    std::vector<std::uint8_t> ref(n * bps, 0xFF);
    lscatter::lte::qam_demodulate_into(sym, m, ref);
    for (const SimdTier t : supported_tiers()) {
      std::vector<std::uint8_t> got(n * bps, 0xAA);
      const SimdKernels& k = simd_kernels(t);
      switch (m) {
        case Modulation::kQpsk:
          k.qam_demap_qpsk(sym.data(), n, got.data());
          break;
        case Modulation::kQam16:
          k.qam_demap16(sym.data(), n, got.data());
          break;
        case Modulation::kQam64:
          k.qam_demap64(sym.data(), n, got.data());
          break;
      }
      EXPECT_EQ(ref, got) << "tier=" << to_string(t) << " bps=" << bps;
    }
  }
}

TEST(SimdEquivalence, QamRoundTripRecoversBitsOnEveryTier) {
  using lscatter::lte::Modulation;
  TierGuard guard;
  for (const Modulation m : {Modulation::kQpsk, Modulation::kQam16,
                             Modulation::kQam64}) {
    const std::size_t bps = lscatter::lte::bits_per_symbol(m);
    Rng rng(0x7171 + bps);
    std::vector<std::uint8_t> tx(240 * bps);
    for (auto& v : tx) v = static_cast<std::uint8_t>(rng.next_u32() & 1);
    const cvec sym = lscatter::lte::qam_modulate(tx, m);
    for (const SimdTier t : supported_tiers()) {
      set_simd_tier(t);
      EXPECT_EQ(lscatter::lte::qam_demodulate(sym, m), tx)
          << "tier=" << to_string(t);
    }
  }
}

}  // namespace
