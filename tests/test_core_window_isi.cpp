// Two modelling validations as tests:
//   * the §3.2.3 window placement — shifting the modulation window into
//     the CP destroys exactly the overlapped bits;
//   * the flat-fading substitution — a true frequency-selective tag->UE
//     hop costs little at small delay spreads (the DESIGN.md §4 claim).

#include <gtest/gtest.h>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"

namespace {

using namespace lscatter;

core::LinkConfig clean_home(std::uint64_t seed) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome, opt);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  return cfg;
}

TEST(WindowPlacement, CenteredWindowIsClean) {
  core::LinkConfig cfg = clean_home(501);
  cfg.schedule.window_offset_units = 0;
  const auto m = core::LinkSimulator(cfg).run(10);
  EXPECT_LT(m.ber(), 1e-3);
}

TEST(WindowPlacement, WindowIntoTheCpLosesTheOverlappedBits) {
  // Shift the window so its first 300 units land in the CP: the UE's
  // useful window never sees them, so ~300/1200 of each symbol's bits are
  // sliced from nothing.
  core::LinkConfig cfg = clean_home(502);
  cfg.schedule.window_offset_units = -(424 + 300);
  cfg.search.range_units = 80;  // genie-small so the search can't "fix" it
  cfg.sync.sigma_s = 0.2e-6;
  const auto m = core::LinkSimulator(cfg).run(10);
  // Expect BER near 300/1200 * 0.5 = 12.5% (lost units decide randomly).
  EXPECT_GT(m.ber(), 0.06);
  EXPECT_EQ(m.packets_ok, 0u);
}

TEST(WindowPlacement, SmallShiftInsideTheUsefulPartIsHarmless) {
  core::LinkConfig cfg = clean_home(503);
  cfg.schedule.window_offset_units = 200;  // still inside [0, K-N]
  const auto m = core::LinkSimulator(cfg).run(10);
  EXPECT_LT(m.ber(), 1e-3);
  EXPECT_EQ(m.packets_detected, m.packets_sent);
}

TEST(FrequencySelective, UnequalizedIsiIsSevere) {
  // Even the home profile's 50 ns delay spread is ~1.5 units at
  // 30.72 Msps: per-unit BPSK without equalization cannot survive it.
  // This is exactly why the paper's §3.3.1 corrects *per subcarrier*.
  core::LinkConfig sel = clean_home(504);
  sel.env.frequency_selective = true;
  const auto m = core::LinkSimulator(sel).run(10);
  EXPECT_GT(m.ber(), 0.05);
}

TEST(FrequencySelective, EqualizerRestoresTheLink) {
  core::LinkConfig flat = clean_home(504);
  core::LinkConfig sel = clean_home(504);
  sel.env.frequency_selective = true;
  sel.search.equalizer_taps = 8;

  const auto mf = core::LinkSimulator(flat).run(10);
  const auto ms = core::LinkSimulator(sel).run(10);
  EXPECT_EQ(ms.packets_detected, ms.packets_sent);
  // With the preamble-trained FD equalizer the multipath link runs within
  // an order of magnitude of the flat floor.
  EXPECT_LT(ms.ber(), 50.0 * (mf.ber() + 1e-5));
  EXPECT_GT(ms.throughput_bps(), 0.9 * mf.throughput_bps());
}

TEST(FrequencySelective, EqualizerIsHarmlessOnFlatChannels) {
  core::LinkConfig cfg = clean_home(506);
  cfg.search.equalizer_taps = 8;
  const auto m = core::LinkSimulator(cfg).run(10);
  EXPECT_LT(m.ber(), 1e-3);
  EXPECT_EQ(m.packets_detected, m.packets_sent);
}

}  // namespace
