// DecodePipeline: multi-carrier pipelined decode must be bit-identical
// to serial StreamingReceiver decode at any worker count, and ring drops
// must surface as receiver gaps that re-phase the decoder instead of
// corrupting it.

#include <gtest/gtest.h>

#include <mutex>
#include <optional>
#include <vector>

#include "core/decode_pipeline.hpp"
#include "core/framing.hpp"
#include "core/streaming_receiver.hpp"
#include "lte/enodeb.hpp"
#include "tag/modulator.hpp"
#include "tag/tag_controller.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

struct Stream {
  cvec rx;
  cvec ambient;
  std::vector<std::vector<std::uint8_t>> payloads;  // per data subframe
};

Stream make_stream(const lte::CellConfig& cell,
                   const tag::TagScheduleConfig& sched,
                   std::size_t n_subframes, std::uint64_t seed) {
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  ecfg.seed = seed;
  lte::Enodeb enb(ecfg);
  tag::TagController ctl(cell, sched);
  dsp::Rng prng(seed + 1);

  Stream s;
  for (std::size_t sf = 0; sf < n_subframes; ++sf) {
    const auto tx = enb.next_subframe();
    const std::size_t cap = ctl.packet_raw_bits(sf);
    tag::SubframePlan plan;
    if (!ctl.is_listening_subframe(sf) && cap > 32) {
      const core::PacketCodec codec(cap);
      auto payload = prng.bits(codec.payload_bits());
      plan = ctl.plan_subframe(
          sf, true, core::split_bits(codec.encode(payload),
                                     ctl.bits_per_symbol()));
      s.payloads.push_back(std::move(payload));
    } else {
      plan = ctl.plan_subframe(sf, false, {});
    }
    const auto pattern = tag::expand_to_units(cell, plan);
    const auto scat =
        tag::apply_pattern(tx.samples, pattern, 7, cf32{1e-3f, 4e-4f});
    s.rx.insert(s.rx.end(), scat.begin(), scat.end());
    s.ambient.insert(s.ambient.end(), tx.samples.begin(),
                     tx.samples.end());
  }
  return s;
}

/// One decoded packet, deep-copied out of the reused feed() span, in a
/// form that compares bit-for-bit: subframe index, raw coded bits, and
/// the CRC-clean payload when the CRC passed.
struct EventCopy {
  std::uint64_t first_subframe_index = 0;
  std::vector<std::uint8_t> coded_bits;
  std::optional<std::vector<std::uint8_t>> payload;
  bool operator==(const EventCopy&) const = default;
};

EventCopy copy_event(const core::StreamingReceiver::PacketEvent& e) {
  return {e.first_subframe_index, e.result.coded_bits, e.result.payload};
}

/// Serial ground truth: the exact event list a lone StreamingReceiver
/// produces for this stream.
std::vector<EventCopy> serial_events(
    const core::StreamingReceiver::Config& cfg, const Stream& s) {
  core::StreamingReceiver ue(cfg);
  std::vector<EventCopy> out;
  for (const auto& e : ue.feed(s.rx, s.ambient)) {
    out.push_back(copy_event(e));
  }
  return out;
}

TEST(DecodePipeline, BitIdenticalToSerialAtAnyThreadCount) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;

  // Three carriers with different seeds (different eNodeB data and
  // different tag payloads per carrier).
  constexpr std::size_t kCarriers = 3;
  constexpr std::size_t kSubframes = 12;
  std::vector<Stream> streams;
  for (std::size_t c = 0; c < kCarriers; ++c) {
    streams.push_back(make_stream(cell, sched, kSubframes, 100 + c));
  }

  core::StreamingReceiver::Config rcfg;
  rcfg.cell = cell;
  rcfg.schedule = sched;
  std::vector<std::vector<EventCopy>> truth;
  for (std::size_t c = 0; c < kCarriers; ++c) {
    truth.push_back(serial_events(rcfg, streams[c]));
    // Every data subframe emits exactly one event. Decoded payloads
    // match the transmitted ones; sync subframes (PSS/SSS steal two
    // symbols) are marginal at this SNR and may miss CRC — that is a
    // property of the modem, not the pipeline, so the determinism check
    // below compares full event identity instead of just payloads.
    ASSERT_EQ(truth[c].size(), streams[c].payloads.size());
    for (std::size_t i = 0; i < truth[c].size(); ++i) {
      if (truth[c][i].payload.has_value()) {
        EXPECT_EQ(*truth[c][i].payload, streams[c].payloads[i]);
      } else {
        EXPECT_EQ(truth[c][i].first_subframe_index % 5, 0u)
            << "CRC miss outside a sync subframe";
      }
    }
  }

  for (const std::size_t threads : {1u, 2u, 4u}) {
    core::DecodePipeline::Config pcfg;
    pcfg.carriers.assign(kCarriers, rcfg);
    pcfg.threads = threads;
    // Ring big enough to hold every push even if the worker never runs
    // (each sub-chunk push occupies one slot): the replay is lossless,
    // so the output must be *exactly* the serial event stream.
    pcfg.ring_chunks = 32;

    std::mutex mu;
    std::vector<std::vector<EventCopy>> got(kCarriers);
    pcfg.on_packet = [&mu, &got](std::size_t carrier, const auto& ev) {
      std::lock_guard<std::mutex> lock(mu);
      got[carrier].push_back(copy_event(ev));
    };

    core::DecodePipeline pipe(pcfg);
    EXPECT_LE(pipe.threads(), kCarriers);
    pipe.start();
    const std::size_t spsf = cell.samples_per_subframe();
    // Awkward chunking (not subframe aligned) on purpose.
    for (std::size_t pos = 0; pos < streams[0].rx.size(); pos += 1111) {
      for (std::size_t c = 0; c < kCarriers; ++c) {
        const std::size_t n =
            std::min<std::size_t>(1111, streams[c].rx.size() - pos);
        pipe.push(c, std::span<const cf32>(streams[c].rx).subspan(pos, n),
                  std::span<const cf32>(streams[c].ambient).subspan(pos, n));
      }
    }
    pipe.stop();  // drains

    for (std::size_t c = 0; c < kCarriers; ++c) {
      EXPECT_EQ(got[c], truth[c]) << "carrier " << c << " at " << threads
                                  << " thread(s)";
      ASSERT_EQ(got[c].size(), truth[c].size());
      EXPECT_EQ(pipe.ring(c).dropped_samples(), 0u);
      EXPECT_LT(pipe.receiver(c).buffered_samples(), spsf);
    }
  }
}

TEST(DecodePipeline, RingOverrunSurfacesAsGapAndDecodeRecovers) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  constexpr std::size_t kSubframes = 20;
  const Stream s = make_stream(cell, sched, kSubframes, 77);
  const std::size_t spsf = cell.samples_per_subframe();

  core::StreamingReceiver::Config rcfg;
  rcfg.cell = cell;
  rcfg.schedule = sched;

  core::DecodePipeline::Config pcfg;
  pcfg.carriers.push_back(rcfg);
  pcfg.threads = 1;
  // Ring holds only 6 subframes; pushing 20 before the workers start
  // deterministically drops the oldest 14.
  constexpr std::size_t kRing = 6;
  pcfg.ring_chunks = kRing;

  std::mutex mu;
  std::vector<std::uint64_t> decoded_subframes;
  pcfg.on_packet = [&mu, &decoded_subframes](std::size_t,
                                             const auto& ev) {
    std::lock_guard<std::mutex> lock(mu);
    decoded_subframes.push_back(ev.first_subframe_index);
  };

  core::DecodePipeline pipe(pcfg);
  // Producer runs ahead of a stopped consumer: push the whole stream
  // subframe by subframe, THEN start the workers.
  for (std::size_t sf = 0; sf < kSubframes; ++sf) {
    pipe.push(0, std::span<const cf32>(s.rx).subspan(sf * spsf, spsf),
              std::span<const cf32>(s.ambient).subspan(sf * spsf, spsf));
  }
  EXPECT_EQ(pipe.ring(0).dropped_samples(), (kSubframes - kRing) * spsf);
  pipe.start();
  pipe.stop();  // drains the 6 surviving subframes

  // The receiver was told about the hole...
  EXPECT_EQ(pipe.receiver(0).gaps_notified(), 1u);
  // ...and decoded exactly the surviving data subframes (14..19 minus
  // the listening slot at 19), with correct absolute subframe indices.
  std::vector<std::uint64_t> expect;
  for (std::size_t sf = kSubframes - kRing; sf < kSubframes; ++sf) {
    if (sf % 10 != 9) expect.push_back(sf);
  }
  EXPECT_EQ(decoded_subframes, expect);
}

}  // namespace
