// Sim pool: serial-vs-parallel bit-identity, in-order delivery, seed
// derivation plumbing, thread resolution, backpressure bounds, and
// failure propagation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/scenario.hpp"
#include "core/sim_pool.hpp"
#include "dsp/rng.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace {

using namespace lscatter;

core::LinkConfig small_config(std::uint64_t seed) {
  core::ScenarioOptions opt;
  opt.bandwidth = lte::Bandwidth::kMHz1_4;  // cheapest numerology
  opt.seed = seed;
  return core::make_scenario(core::Scene::kSmartHome, opt);
}

TEST(SimPool, ParallelIsBitIdenticalToSerial) {
  const core::LinkConfig cfg = small_config(99);
  const std::size_t drops = 6;
  const std::size_t subframes = 2;
  const core::DropSweep serial =
      core::run_drops_parallel(cfg, drops, subframes, 1);
  ASSERT_EQ(serial.throughputs_bps.size(), drops);

  for (const std::size_t threads : {2, 8}) {
    const core::DropSweep parallel =
        core::run_drops_parallel(cfg, drops, subframes, threads);
    // Exact equality, doubles included: same seeds, same accumulation
    // order, so every bit must match at any thread count.
    EXPECT_TRUE(parallel.total == serial.total)
        << "thread count " << threads << " diverged from serial";
    EXPECT_EQ(parallel.throughputs_bps, serial.throughputs_bps);
  }
}

TEST(SimPool, DeliversOutcomesInDropIndexOrder) {
  const core::LinkConfig cfg = small_config(7);
  core::PoolOptions options;
  options.threads = 8;
  std::vector<std::size_t> order;
  core::for_each_drop(cfg, 12, 1, options,
                      [&order](const core::DropOutcome& outcome) {
                        order.push_back(outcome.drop_index);
                      });
  ASSERT_EQ(order.size(), 12u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(SimPool, ConfigForDropDerivesBothSeeds) {
  const core::LinkConfig base = small_config(1234);
  const core::LinkConfig d0 = core::config_for_drop(base, 0);
  const core::LinkConfig d1 = core::config_for_drop(base, 1);
  EXPECT_EQ(d0.seed, dsp::derive_seed(base.seed, 0));
  EXPECT_EQ(d0.enodeb.seed, dsp::derive_seed(d0.seed, 1));
  EXPECT_NE(d0.seed, d1.seed);
  EXPECT_NE(d0.enodeb.seed, d1.enodeb.seed);
  EXPECT_NE(d0.seed, d0.enodeb.seed);
  // Reproducible: deriving again yields the same configs.
  EXPECT_EQ(core::config_for_drop(base, 0).seed, d0.seed);
}

TEST(SimPool, AutoThreadsMatchSerialToo) {
  // threads = 0 resolves from LSCATTER_THREADS / hardware concurrency;
  // whatever it picks, results must not change.
  const core::LinkConfig cfg = small_config(55);
  const core::DropSweep serial = core::run_drops_parallel(cfg, 4, 1, 1);
  const core::DropSweep automatic = core::run_drops_parallel(cfg, 4, 1, 0);
  EXPECT_TRUE(automatic.total == serial.total);
  EXPECT_EQ(automatic.throughputs_bps, serial.throughputs_bps);
}

TEST(SimPool, ResolveThreadsHonorsRequestEnvAndFloor) {
  EXPECT_EQ(core::resolve_threads(3), 3u);
  ::setenv("LSCATTER_THREADS", "5", 1);
  EXPECT_EQ(core::resolve_threads(0), 5u);
  ::setenv("LSCATTER_THREADS", "garbage", 1);
  EXPECT_GE(core::resolve_threads(0), 1u);  // falls back to hardware
  ::unsetenv("LSCATTER_THREADS");
  EXPECT_GE(core::resolve_threads(0), 1u);
}

TEST(SimPool, BackpressureBoundsTheReorderWindow) {
#if LSCATTER_OBS_ENABLED
  obs::Registry::instance().gauge("core.pool.window_high_water").reset();
  const core::LinkConfig cfg = small_config(31);
  core::PoolOptions options;
  options.threads = 4;
  options.window = 2;
  std::size_t seen = 0;
  core::for_each_drop(cfg, 16, 1, options,
                      [&seen](const core::DropOutcome&) { ++seen; });
  EXPECT_EQ(seen, 16u);
  const obs::Gauge* hw =
      obs::Registry::instance().find_gauge("core.pool.window_high_water");
  ASSERT_NE(hw, nullptr);
  // Completed-but-unemitted drops never exceed window + in-flight
  // workers (each worker parks at most one finished drop).
  EXPECT_LE(hw->value(), 2.0 + 4.0);
#else
  GTEST_SKIP() << "observability compiled out";
#endif
}

TEST(SimPool, ConsumerExceptionStopsThePoolAndPropagates) {
  const core::LinkConfig cfg = small_config(63);
  core::PoolOptions options;
  options.threads = 4;
  std::size_t seen = 0;
  EXPECT_THROW(
      core::for_each_drop(cfg, 32, 1, options,
                          [&seen](const core::DropOutcome&) {
                            if (++seen == 3) {
                              throw std::runtime_error("consumer bailed");
                            }
                          }),
      std::runtime_error);
  EXPECT_EQ(seen, 3u);
}

TEST(SimPool, ZeroDropsIsANoOp) {
  const core::LinkConfig cfg = small_config(1);
  const core::DropSweep sweep = core::run_drops_parallel(cfg, 0, 1, 4);
  EXPECT_EQ(sweep.throughputs_bps.size(), 0u);
  EXPECT_EQ(sweep.total.bits_sent, 0u);
}

}  // namespace
