// Packet codec: CRC-32 + whitening round trips, corruption detection,
// bit chunking.

#include <gtest/gtest.h>

#include "core/framing.hpp"
#include "dsp/rng.hpp"

namespace {

using namespace lscatter;
using core::PacketCodec;

TEST(PacketCodec, EncodeDecodeRoundTrip) {
  PacketCodec codec(256);
  EXPECT_EQ(codec.payload_bits(), 224u);
  dsp::Rng rng(1);
  const auto payload = rng.bits(codec.payload_bits());
  const auto coded = codec.encode(payload);
  EXPECT_EQ(coded.size(), 256u);
  const auto decoded = codec.decode(coded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(PacketCodec, WhiteningBreaksConstantRuns) {
  PacketCodec codec(512);
  const std::vector<std::uint8_t> zeros(codec.payload_bits(), 0);
  const auto coded = codec.encode(zeros);
  // The on-air bits must not be a constant run.
  std::size_t ones = 0;
  for (const auto b : coded) ones += b;
  EXPECT_GT(ones, coded.size() / 4);
  EXPECT_LT(ones, 3 * coded.size() / 4);
  // Longest run must be short.
  std::size_t run = 0;
  std::size_t max_run = 0;
  for (std::size_t i = 1; i < coded.size(); ++i) {
    run = (coded[i] == coded[i - 1]) ? run + 1 : 0;
    max_run = std::max(max_run, run);
  }
  EXPECT_LT(max_run, 24u);
}

TEST(PacketCodec, CorruptionFailsCrc) {
  PacketCodec codec(128);
  dsp::Rng rng(2);
  const auto payload = rng.bits(codec.payload_bits());
  auto coded = codec.encode(payload);
  coded[40] ^= 1;
  EXPECT_FALSE(codec.decode(coded).has_value());
}

TEST(PacketCodec, DewhitenRecoversPayloadBitsEvenWithErrors) {
  PacketCodec codec(128);
  dsp::Rng rng(3);
  const auto payload = rng.bits(codec.payload_bits());
  auto coded = codec.encode(payload);
  coded[5] ^= 1;
  const auto plain = codec.dewhiten(coded);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (plain[i] != payload[i]) ++errors;
  }
  EXPECT_EQ(errors, 1u);
}

TEST(SplitBits, ChunksAndPadsDeterministically) {
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0};
  const auto chunks = core::split_bits(bits, 3);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_EQ(chunks[1][0], 1);
  EXPECT_EQ(chunks[1][1], 0);
  EXPECT_EQ(chunks[1].size(), 3u);  // padded
}

TEST(SplitJoin, RoundTripPreservesBits) {
  dsp::Rng rng(4);
  const auto bits = rng.bits(1001);
  const auto chunks = core::split_bits(bits, 64);
  const auto joined = core::join_bits(chunks, bits.size());
  EXPECT_EQ(joined, bits);
}

TEST(SplitBits, ExactMultipleNeedsNoPadding) {
  dsp::Rng rng(5);
  const auto bits = rng.bits(128);
  const auto chunks = core::split_bits(bits, 32);
  EXPECT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) EXPECT_EQ(c.size(), 32u);
}

}  // namespace
