// Analog front end + sync detector: PSS detection, latency, cadence
// tracking, false-alarm rejection.

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "dsp/rng.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"
#include "lte/signal_map.hpp"
#include "lte/ue_sync.hpp"
#include "tag/analog_frontend.hpp"
#include "tag/sync_detector.hpp"

namespace {

using namespace lscatter;

dsp::cvec enodeb_stream(std::size_t n_subframes, std::uint64_t seed,
                        lte::CellConfig* out_cell = nullptr) {
  lte::Enodeb::Config cfg;
  cfg.cell.bandwidth = lte::Bandwidth::kMHz20;
  cfg.seed = seed;
  lte::Enodeb enb(cfg);
  if (out_cell) *out_cell = cfg.cell;
  dsp::cvec s;
  for (std::size_t sf = 0; sf < n_subframes; ++sf) {
    const auto tx = enb.next_subframe();
    s.insert(s.end(), tx.samples.begin(), tx.samples.end());
  }
  return s;
}

TEST(AnalogFrontend, DetectsEveryPssAfterWarmup) {
  lte::CellConfig cell;
  dsp::cvec s = enodeb_stream(40, 51, &cell);
  dsp::Rng noise(52);
  channel::add_awgn(s, 1e-3, noise);

  tag::AnalogFrontend fe({}, cell.sample_rate_hz());
  const auto trace = fe.process(s);
  const auto edges = tag::AnalogFrontend::rising_edges(trace);

  const double sym6 =
      static_cast<double>(
          lte::symbol_offset_in_subframe(cell, lte::kPssSymbolIndex) +
          cell.cp_samples()) /
      cell.sample_rate_hz();

  std::size_t hits = 0;
  std::size_t fas = 0;
  for (const double e : edges) {
    if (e < 10e-3) continue;  // cold-start settle
    bool matched = false;
    for (std::size_t k = 2; k < 8; ++k) {
      const double err = e - (static_cast<double>(k) * 5e-3 + sym6);
      if (err >= -20e-6 && err < 250e-6) {
        matched = true;
        ++hits;
        break;
      }
    }
    if (!matched) ++fas;
  }
  EXPECT_GE(hits, 5u);  // 6 windows in (10 ms, 40 ms)
  EXPECT_LE(fas, 1u);
}

TEST(AnalogFrontend, LatencyIsTensOfMicroseconds) {
  lte::CellConfig cell;
  dsp::cvec s = enodeb_stream(30, 53, &cell);
  tag::AnalogFrontend fe({}, cell.sample_rate_hz());
  const auto trace = fe.process(s);
  const auto edges = tag::AnalogFrontend::rising_edges(trace);
  const double sym6 =
      static_cast<double>(
          lte::symbol_offset_in_subframe(cell, lte::kPssSymbolIndex) +
          cell.cp_samples()) /
      cell.sample_rate_hz();
  for (const double e : edges) {
    if (e < 10e-3) continue;
    // Find the nearest PSS before the edge.
    const double k = std::floor((e - sym6) / 5e-3);
    const double err = e - (k * 5e-3 + sym6);
    if (err < 250e-6) {
      EXPECT_GE(err, -5e-6);
      EXPECT_LT(err, 120e-6);
    }
  }
}

TEST(AnalogFrontend, TraceShapesAreConsistent) {
  lte::CellConfig cell;
  const dsp::cvec s = enodeb_stream(2, 54, &cell);
  tag::AnalogFrontendConfig cfg;
  tag::AnalogFrontend fe(cfg, cell.sample_rate_hz());
  const auto trace = fe.process(s);
  EXPECT_EQ(trace.rc.size(), s.size() / cfg.decimation);
  EXPECT_EQ(trace.rc.size(), trace.average.size());
  EXPECT_EQ(trace.rc.size(), trace.comparator.size());
  EXPECT_NEAR(trace.dt_s * cell.sample_rate_hz(),
              static_cast<double>(cfg.decimation), 1e-9);
  for (const float v : trace.rc) EXPECT_GE(v, 0.0f);
}

TEST(SyncDetector, LocksOnFiveMsCadence) {
  tag::SyncDetector det({});
  const std::vector<double> edges = {0.010, 0.015, 0.020, 0.025};
  det.feed_edges(edges);
  EXPECT_TRUE(det.locked());
  ASSERT_TRUE(det.last_pss_estimate_s().has_value());
  EXPECT_NEAR(*det.last_pss_estimate_s(), 0.025 - 15e-6, 1e-9);
}

TEST(SyncDetector, PredictsNextPss) {
  tag::SyncDetector det({});
  det.feed_edges(std::vector<double>{0.010, 0.015});
  const auto next = det.predict_next_pss_s(0.0161);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(*next, 0.015 - 15e-6 + 5e-3, 1e-9);
}

TEST(SyncDetector, IgnoresOffCadenceEdgesOnceLocked) {
  tag::SyncDetector det({});
  det.feed_edges(std::vector<double>{0.010, 0.015, 0.020});
  ASSERT_TRUE(det.locked());
  // A false alarm 2.5 ms later must not move the estimate.
  det.feed_edges(std::vector<double>{0.0225});
  EXPECT_NEAR(*det.last_pss_estimate_s(), 0.020 - 15e-6, 1e-9);
  // The next true edge does.
  det.feed_edges(std::vector<double>{0.025});
  EXPECT_NEAR(*det.last_pss_estimate_s(), 0.025 - 15e-6, 1e-9);
}

TEST(SyncDetector, RefractoryRejectsChatter) {
  tag::SyncDetector det({});
  det.feed_edges(std::vector<double>{0.010, 0.0101, 0.0102, 0.015});
  EXPECT_TRUE(det.locked());
}

TEST(SyncDetector, FeedIqLocksOnBuriedPssReplicas) {
  // Digital-tag path: raw IQ in, FFT-based PSS correlation, then the same
  // cadence tracker as the comparator edges. Three replicas at the 5 ms
  // cadence buried in noise must lock the detector with a sample-accurate
  // estimate (no analog latency, so nominal_latency_s = 0).
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz5;
  const lte::CellSearcher searcher(cell);
  const dsp::cvec& replica = searcher.pss_replica(1);

  const double fs = cell.sample_rate_hz();
  const auto period_samples =
      static_cast<std::size_t>(std::lround(5e-3 * fs));
  const std::size_t first = 2000;
  dsp::Rng rng(51);
  dsp::cvec iq(first + 2 * period_samples + replica.size() + 500);
  for (auto& v : iq) v = rng.complex_normal(0.05);
  for (std::size_t p = 0; p < 3; ++p) {
    const std::size_t off = first + p * period_samples;
    for (std::size_t i = 0; i < replica.size(); ++i) iq[off + i] += replica[i];
  }

  tag::SyncDetectorConfig cfg;
  cfg.nominal_latency_s = 0.0;
  tag::SyncDetector det(cfg);
  const double t0 = 1.0;
  const std::size_t n_detected =
      det.feed_iq(iq, replica, t0, dsp::Hz(fs), 0.5f);
  EXPECT_EQ(n_detected, 3u);
  EXPECT_TRUE(det.locked());
  ASSERT_TRUE(det.last_pss_estimate_s().has_value());
  const double expected =
      t0 + static_cast<double>(first + 2 * period_samples) / fs;
  EXPECT_NEAR(*det.last_pss_estimate_s(), expected, 1.5 / fs);
}

TEST(SyncDetector, FeedIqIgnoresNoiseOnlyInput) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz5;
  const lte::CellSearcher searcher(cell);
  const dsp::cvec& replica = searcher.pss_replica(0);
  dsp::Rng rng(52);
  dsp::cvec iq(20000);
  for (auto& v : iq) v = rng.complex_normal();
  tag::SyncDetectorConfig cfg;
  cfg.nominal_latency_s = 0.0;
  tag::SyncDetector det(cfg);
  EXPECT_EQ(det.feed_iq(iq, replica, 0.0,
                        dsp::Hz(cell.sample_rate_hz()), 0.5f),
            0u);
  EXPECT_FALSE(det.locked());
}

TEST(StatisticalSync, DriftAccumulatesWithClockPpm) {
  tag::StatisticalSync sync;
  sync.clock_ppm = 20.0;
  const double e0 = 1e-6;
  EXPECT_NEAR(sync.drifted_error_s(e0, 0.1), e0 + 2e-6, 1e-12);
  EXPECT_NEAR(sync.drifted_error_s(e0, 0.0), e0, 1e-15);
}

TEST(StatisticalSync, SampleErrorHasRequestedSpread) {
  tag::StatisticalSync sync;
  sync.bias_s = 1e-6;
  sync.sigma_s = 2e-6;
  dsp::Rng rng(55);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double e = sync.sample_error_s(rng);
    sum += e;
    sum2 += e * e;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1e-6, 0.1e-6);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 2e-6, 0.1e-6);
}

}  // namespace
