// Phase-offset elimination (Eq. 5/6) and modulation-offset determination
// (Eq. 7): unit behaviour, the frequency-domain form from the paper, and
// a brute-force Eq. 7 equivalence check on a tiny instance.

#include <gtest/gtest.h>

#include <cmath>

#include "core/modulation_offset.hpp"
#include "core/phase_offset.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

TEST(PhaseOffset, EstimateGainRecoversComplexGain) {
  dsp::Rng rng(1);
  const cf32 g{0.3f, -0.4f};
  cvec z;
  double ref_energy = 0.0;
  for (int i = 0; i < 500; ++i) {
    const cf32 x = rng.complex_normal();
    z.push_back(g * cf32{std::norm(x), 0.0f});
    ref_energy += std::norm(x);
  }
  const cf32 est = core::estimate_gain(z, ref_energy);
  EXPECT_NEAR(est.real(), g.real(), 0.01);
  EXPECT_NEAR(est.imag(), g.imag(), 0.01);
}

TEST(PhaseOffset, DerotateAlignsToRealAxis) {
  cvec z = {cf32{0.0f, 2.0f}, cf32{0.0f, 4.0f}};
  core::derotate(z, cf32{0.0f, 1.0f});
  EXPECT_NEAR(z[0].real(), 2.0f, 1e-5);
  EXPECT_NEAR(z[0].imag(), 0.0f, 1e-5);
  EXPECT_NEAR(z[1].real(), 4.0f, 1e-5);
}

TEST(PhaseOffset, Eq6FrequencyDomainCancelsCommonPhase) {
  // Build Y_k = e^{j phi} * A_k for random A; the products Y_k conj(Y_r)
  // must not depend on phi (paper Eq. 6).
  dsp::Rng rng(2);
  cvec a(64);
  for (auto& v : a) v = rng.complex_normal();

  const auto products_with_phi = [&](double phi) {
    const cf32 rot{static_cast<float>(std::cos(phi)),
                   static_cast<float>(std::sin(phi))};
    cvec y(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) y[i] = rot * a[i];
    return core::eq6_reference_products(y, 5);
  };

  const cvec p0 = products_with_phi(0.0);
  const cvec p1 = products_with_phi(1.234);
  for (std::size_t k = 0; k < p0.size(); ++k) {
    EXPECT_NEAR(p0[k].real(), p1[k].real(), 1e-3);
    EXPECT_NEAR(p0[k].imag(), p1[k].imag(), 1e-3);
  }
}

class OffsetSweep : public ::testing::TestWithParam<std::ptrdiff_t> {};

TEST_P(OffsetSweep, FindsInjectedOffsetExactly) {
  const std::ptrdiff_t true_offset = GetParam();
  dsp::Rng rng(3);
  const std::size_t k = 2048;
  const std::size_t n = 1200;
  const std::size_t nominal = (k - n) / 2;

  std::vector<std::uint8_t> pattern(n);
  for (auto& b : pattern) b = static_cast<std::uint8_t>(rng.next_u32() & 1);

  // z products: |x|^2 * g * (+-1 per pattern), pattern shifted by
  // true_offset; filler +1 elsewhere.
  const cf32 g{0.8f, 0.6f};
  cvec z(k);
  for (std::size_t i = 0; i < k; ++i) {
    const float mag = static_cast<float>(std::norm(rng.complex_normal()));
    const std::ptrdiff_t rel =
        static_cast<std::ptrdiff_t>(i) -
        (static_cast<std::ptrdiff_t>(nominal) + true_offset);
    float sign = 1.0f;
    if (rel >= 0 && rel < static_cast<std::ptrdiff_t>(n)) {
      sign = pattern[static_cast<std::size_t>(rel)] ? 1.0f : -1.0f;
    }
    z[i] = g * mag * sign + rng.complex_normal(1e-6);
  }

  core::OffsetSearch search;
  search.range_units = 300;
  const auto result =
      core::find_modulation_offset(z, pattern, nominal, search);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->offset_units, true_offset);
  EXPECT_GT(result->metric, 0.8f);
  // The gain estimate at the peak carries the injected phase.
  const double est_phase = std::atan2(result->gain.imag(),
                                      result->gain.real());
  EXPECT_NEAR(est_phase, std::atan2(0.6, 0.8), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Offsets, OffsetSweep,
                         ::testing::Values(-250, -61, -3, 0, 1, 40, 137,
                                           299));

TEST(OffsetSearch, RejectsPureNoise) {
  dsp::Rng rng(4);
  cvec z(2048);
  for (auto& v : z) v = rng.complex_normal();
  std::vector<std::uint8_t> pattern(1200);
  for (auto& b : pattern) b = static_cast<std::uint8_t>(rng.next_u32() & 1);
  const auto result =
      core::find_modulation_offset(z, pattern, 424, core::OffsetSearch{});
  EXPECT_FALSE(result.has_value());
}

TEST(Eq7, BruteForceArgMinMatchesPerUnitDecisions) {
  // Tiny instance: K = 16 units, N = 4 modulated units, brute-force the
  // 2^4 theta sequences of Eq. 7 and check the per-unit slicer picks the
  // same winner.
  dsp::Rng rng(5);
  const std::size_t k = 16;
  const std::size_t n = 4;
  const std::size_t start = 6;
  const std::vector<std::uint8_t> true_bits = {1, 0, 0, 1};
  const cf32 g{0.6f, 0.8f};  // includes the phase offset e^{j phi}

  cvec x(k);
  for (auto& v : x) v = rng.complex_normal();
  cvec r(k);
  for (std::size_t i = 0; i < k; ++i) {
    float sign = 1.0f;
    if (i >= start && i < start + n) sign = true_bits[i - start] ? 1 : -1;
    r[i] = g * sign * x[i] + rng.complex_normal(1e-4);
  }

  // Brute force over all theta sequences: minimize sum |r - g_hat *
  // e^{j theta} x| with g_hat estimated from the filler units.
  cvec z(k);
  for (std::size_t i = 0; i < k; ++i) z[i] = r[i] * std::conj(x[i]);
  cvec z_filler;
  double e_filler = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    if (i < start || i >= start + n) {
      z_filler.push_back(z[i]);
      e_filler += std::norm(x[i]);
    }
  }
  const cf32 g_hat = core::estimate_gain(z_filler, e_filler);

  double best_cost = 1e18;
  std::vector<std::uint8_t> best_bits;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    double cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float sign = (mask >> i) & 1u ? 1.0f : -1.0f;
      cost += std::norm(r[start + i] - g_hat * sign * x[start + i]);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_bits.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        best_bits[i] = static_cast<std::uint8_t>((mask >> i) & 1u);
      }
    }
  }
  EXPECT_EQ(best_bits, true_bits);

  // Per-unit slicing (the tractable form) must agree.
  for (std::size_t i = 0; i < n; ++i) {
    const cf32 v = z[start + i] * std::conj(g_hat);
    EXPECT_EQ(v.real() >= 0.0f ? 1 : 0, true_bits[i]) << "unit " << i;
  }
}

}  // namespace
