// Ambient reconstruction: the realistic UE path (decode the original band,
// regenerate the waveform) versus the genie path.

#include <gtest/gtest.h>

#include "channel/awgn.hpp"
#include "core/ambient_reconstructor.hpp"
#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "lte/signal_map.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

TEST(AmbientReconstructor, PerfectInputReproducesWaveformExactly) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  ecfg.seed = 3;
  lte::Enodeb enb(ecfg);
  const auto tx = enb.make_subframe(1);

  core::AmbientReconstructor rec(ecfg.cell);
  const auto result = rec.reconstruct(tx.samples, tx, ecfg.modulation);
  EXPECT_EQ(result.re_errors, 0u);
  EXPECT_GT(result.re_total, 1000u);

  double max_err = 0.0;
  for (std::size_t n = 0; n < tx.samples.size(); ++n) {
    max_err = std::max(
        max_err,
        static_cast<double>(std::abs(result.samples[n] - tx.samples[n])));
  }
  EXPECT_LT(max_err, 1e-3);
}

TEST(AmbientReconstructor, SurvivesScalingRotationAndNoise) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  ecfg.seed = 5;
  lte::Enodeb enb(ecfg);
  const auto tx = enb.make_subframe(2);

  cvec rx(tx.samples.size());
  const cf32 h{2e-4f, 3e-4f};  // realistic direct amplitude, rotated
  for (std::size_t n = 0; n < rx.size(); ++n) rx[n] = h * tx.samples[n];
  dsp::Rng noise(6);
  channel::add_awgn(rx, 1e-12, noise);  // ~25 dB direct SNR

  core::AmbientReconstructor rec(ecfg.cell);
  const auto result = rec.reconstruct(rx, tx, ecfg.modulation);
  // A handful of RE decisions may flip at 25 dB with 16QAM; the bulk must
  // be right.
  EXPECT_LT(static_cast<double>(result.re_errors) /
                static_cast<double>(result.re_total),
            0.01);
}

TEST(AmbientReconstructor, SyncSignalsRegenerateFromIdentity) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz1_4;
  ecfg.seed = 7;
  lte::Enodeb enb(ecfg);
  const auto tx = enb.make_subframe(0);  // sync subframe

  // Even with a noisy input, PSS/SSS/CRS positions come out exactly
  // because they are regenerated, not decided.
  cvec rx = tx.samples;
  dsp::Rng noise(8);
  channel::add_awgn(rx, 1e-3, noise);
  core::AmbientReconstructor rec(ecfg.cell);
  const auto result = rec.reconstruct(rx, tx, ecfg.modulation);

  lte::OfdmDemodulator demod(ecfg.cell);
  const auto rebuilt_pss =
      demod.demodulate_symbol(result.samples, lte::kPssSymbolIndex);
  const auto truth_pss = tx.grid.symbol(lte::kPssSymbolIndex);
  for (std::size_t k = 0; k < rebuilt_pss.size(); ++k) {
    EXPECT_NEAR(std::abs(rebuilt_pss[k] - truth_pss[k]), 0.0, 1e-2);
  }
}

TEST(LinkSimulator, BlindAmbientWorksEndToEnd) {
  core::ScenarioOptions opt;
  opt.seed = 37;
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome, opt);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  cfg.ambient = core::AmbientSource::kBlind;
  core::LinkSimulator sim(cfg);
  const auto m = sim.run(10);
  EXPECT_EQ(m.packets_detected, m.packets_sent);
  EXPECT_LT(m.ber(), 1e-3);
  EXPECT_GT(m.throughput_bps(), 12.5e6);
}

TEST(LinkSimulator, ReconstructedAmbientMatchesGenieAtCloseRange) {
  core::ScenarioOptions opt;
  opt.seed = 31;
  core::LinkConfig genie = core::make_scenario(core::Scene::kSmartHome, opt);
  genie.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  core::LinkConfig recon = genie;
  recon.ambient = core::AmbientSource::kReconstructed;

  core::LinkSimulator sim_g(genie);
  core::LinkSimulator sim_r(recon);
  const auto mg = sim_g.run(10);
  const auto mr = sim_r.run(10);

  EXPECT_EQ(mr.packets_detected, mr.packets_sent);
  // The direct link is very strong up close, so reconstruction is nearly
  // perfect and throughput must be within a few percent of genie mode.
  EXPECT_NEAR(mr.throughput_bps(), mg.throughput_bps(),
              0.05 * mg.throughput_bps());
  EXPECT_LT(static_cast<double>(sim_r.last_drop().ambient_re_errors + 1) /
                static_cast<double>(sim_r.last_drop().ambient_re_total + 1),
            0.01);
}

}  // namespace
