// eNodeB TX + UE RX: clean-channel decode, channel estimation under phase
// rotation, AWGN degradation sweep, signal placement rules.

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "dsp/rng.hpp"
#include "lte/enodeb.hpp"
#include "lte/signal_map.hpp"
#include "lte/ue_rx.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;

lte::Enodeb::Config config_for(lte::Bandwidth bw, std::uint64_t seed = 9) {
  lte::Enodeb::Config c;
  c.cell.bandwidth = bw;
  c.cell.n_id_1 = 12;
  c.cell.n_id_2 = 1;
  c.seed = seed;
  return c;
}

TEST(Enodeb, SubframeHasExpectedSizeAndPower) {
  lte::Enodeb enb(config_for(lte::Bandwidth::kMHz5));
  const auto tx = enb.next_subframe();
  EXPECT_EQ(tx.samples.size(), enb.cell().samples_per_subframe());
  // Unit-power REs -> roughly unit-power samples (partial loading and
  // boosts shift it slightly).
  EXPECT_NEAR(dsp::mean_power(tx.samples), 1.0, 0.35);
}

TEST(Enodeb, SyncSignalsOnlyInSubframes0And5) {
  lte::Enodeb enb(config_for(lte::Bandwidth::kMHz5));
  for (const std::size_t sf : {0u, 1u, 4u, 5u, 9u}) {
    const auto tx = enb.make_subframe(sf);
    bool has_pss = false;
    for (std::size_t k = 0; k < enb.cell().n_subcarriers(); ++k) {
      if (tx.grid.type_at(lte::kPssSymbolIndex, k) == lte::ReType::kPss) {
        has_pss = true;
      }
    }
    EXPECT_EQ(has_pss, sf == 0 || sf == 5) << "subframe " << sf;
  }
}

TEST(Enodeb, CrsLatticeMatchesCellShift) {
  const auto cfg = config_for(lte::Bandwidth::kMHz10);
  lte::Enodeb enb(cfg);
  const auto tx = enb.make_subframe(3);
  const std::size_t v_shift = cfg.cell.cell_id() % 6;
  const auto positions = lte::crs_subcarriers(cfg.cell, 0);
  EXPECT_EQ(positions.size(), 2 * cfg.cell.n_rb());
  for (const std::size_t k : positions) {
    EXPECT_EQ(k % 6, v_shift % 6);
    EXPECT_EQ(tx.grid.type_at(0, k), lte::ReType::kCrs);
  }
}

TEST(Enodeb, PayloadBitsMatchGridCapacity) {
  lte::Enodeb enb(config_for(lte::Bandwidth::kMHz1_4));
  const auto tx = enb.make_subframe(2);
  std::size_t data_res = 0;
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    for (std::size_t k = 0; k < enb.cell().n_subcarriers(); ++k) {
      if (tx.grid.type_at(l, k) == lte::ReType::kData) ++data_res;
    }
  }
  EXPECT_EQ(tx.payload_bits.size(),
            data_res * lte::bits_per_symbol(enb.config().modulation) - 24);
}

TEST(UeReceiver, CleanChannelDecodesPerfectly) {
  const auto cfg = config_for(lte::Bandwidth::kMHz5);
  lte::Enodeb enb(cfg);
  lte::UeReceiver ue(cfg.cell);
  const auto tx = enb.next_subframe();
  const auto res = ue.receive_subframe(tx.samples, tx, cfg.modulation);
  EXPECT_TRUE(res.crc_ok);
  EXPECT_EQ(res.bit_errors, 0u);
  EXPECT_LT(res.evm_rms, 1e-3);
}

TEST(UeReceiver, ChannelEstimateCorrectsPhaseRotation) {
  const auto cfg = config_for(lte::Bandwidth::kMHz5);
  lte::Enodeb enb(cfg);
  lte::UeReceiver ue(cfg.cell);
  const auto tx = enb.next_subframe();
  auto rx = tx.samples;
  const cf32 h{0.6f, -0.8f};  // |h| = 1, -53 degrees
  for (auto& v : rx) v *= h;
  const auto res = ue.receive_subframe(rx, tx, cfg.modulation);
  EXPECT_TRUE(res.crc_ok);
  EXPECT_EQ(res.bit_errors, 0u);
}

TEST(UeReceiver, EstimatedChannelMatchesAppliedScalar) {
  const auto cfg = config_for(lte::Bandwidth::kMHz1_4);
  lte::Enodeb enb(cfg);
  lte::UeReceiver ue(cfg.cell);
  const auto tx = enb.make_subframe(1);
  auto rx = tx.samples;
  const cf32 h{0.3f, 0.4f};
  for (auto& v : rx) v *= h;
  const auto grid = ue.demodulate_grid(rx);
  const auto est = ue.estimate_channel(grid, 1);
  for (std::size_t k = 0; k < est.h.size(); k += 7) {
    EXPECT_NEAR(est.h[k].real(), h.real(), 0.02);
    EXPECT_NEAR(est.h[k].imag(), h.imag(), 0.02);
  }
}

class UeAwgnSweep : public ::testing::TestWithParam<double> {};

TEST_P(UeAwgnSweep, BerDegradesMonotonicallyWithNoise) {
  const double snr_db = GetParam();
  const auto cfg = config_for(lte::Bandwidth::kMHz5, 77);
  lte::Enodeb enb(cfg);
  lte::UeReceiver ue(cfg.cell);
  dsp::Rng noise(static_cast<std::uint64_t>(snr_db) + 1);

  double ber = 0.0;
  for (int i = 0; i < 3; ++i) {
    const auto tx = enb.next_subframe();
    auto rx = tx.samples;
    channel::add_awgn_snr(rx, dsp::Db{snr_db}, noise);
    ber += ue.receive_subframe(rx, tx, cfg.modulation).ber() / 3.0;
  }
  // 16QAM needs ~14 dB to go nearly clean.
  if (snr_db >= 22.0) {
    EXPECT_LT(ber, 1e-3);
  } else if (snr_db <= 6.0) {
    EXPECT_GT(ber, 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(SnrPoints, UeAwgnSweep,
                         ::testing::Values(0.0, 6.0, 12.0, 22.0, 30.0));

}  // namespace
