// Contract machinery: failure modes, the RAII override, and a few real
// contracts from the pipeline firing on bad inputs.

#include <gtest/gtest.h>

#include "channel/link_budget.hpp"
#include "channel/pathloss.hpp"
#include "core/contracts.hpp"
#include "core/framing.hpp"
#include "dsp/fft.hpp"
#include "dsp/units.hpp"
#include "lte/cell_config.hpp"

namespace {

using namespace lscatter;
using namespace lscatter::dsp::unit_literals;
using core::ContractViolation;
using core::contracts::FailureMode;
using core::contracts::ScopedFailureMode;

TEST(Contracts, ThrowModeRaisesContractViolation) {
  ScopedFailureMode guard(FailureMode::kThrow);
  EXPECT_THROW(LSCATTER_EXPECT(1 == 2, "forced failure"), ContractViolation);
  EXPECT_THROW(LSCATTER_ENSURE(false, "forced failure"), ContractViolation);
  EXPECT_THROW(LSCATTER_ASSERT(false, "forced failure"), ContractViolation);
}

TEST(Contracts, PassingCheckIsSilent) {
  ScopedFailureMode guard(FailureMode::kThrow);
  EXPECT_NO_THROW(LSCATTER_EXPECT(2 + 2 == 4, "arithmetic works"));
}

TEST(Contracts, LogModeContinues) {
  ScopedFailureMode guard(FailureMode::kLog);
  EXPECT_NO_THROW(LSCATTER_ASSERT(false, "logged, not fatal"));
}

TEST(Contracts, ScopedModeRestoresOnExit) {
  const FailureMode before = core::contracts::failure_mode();
  {
    ScopedFailureMode guard(FailureMode::kThrow);
    EXPECT_EQ(core::contracts::failure_mode(), FailureMode::kThrow);
  }
  EXPECT_EQ(core::contracts::failure_mode(), before);
}

TEST(Contracts, MessageNamesKindExpressionAndLocation) {
  ScopedFailureMode guard(FailureMode::kThrow);
  try {
    LSCATTER_EXPECT(1 > 2, "one is not greater than two");
    FAIL() << "expected a ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 > 2"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
    EXPECT_NE(what.find("one is not greater than two"), std::string::npos);
  }
}

// --- real contracts in the pipeline ---

TEST(Contracts, SnrRejectsNonPositiveBandwidth) {
  ScopedFailureMode guard(FailureMode::kThrow);
  channel::LinkBudget b;
  EXPECT_THROW(b.backscatter_snr_db(40.0_db, 40.0_db, dsp::Hz{0.0}),
               ContractViolation);
  EXPECT_THROW(b.backscatter_snr_db(40.0_db, 40.0_db, dsp::Hz{-18e6}),
               ContractViolation);
  EXPECT_NO_THROW(b.backscatter_snr_db(40.0_db, 40.0_db, dsp::Hz{18e6}));
}

TEST(Contracts, NoiseFloorRejectsNonPositiveBandwidth) {
  ScopedFailureMode guard(FailureMode::kThrow);
  EXPECT_THROW(channel::noise_floor_dbm(dsp::Hz{0.0}, 7.0_db),
               ContractViolation);
}

TEST(Contracts, PathLossRejectsNonPositiveDistance) {
  ScopedFailureMode guard(FailureMode::kThrow);
  channel::PathLossModel m;
  EXPECT_THROW(m.median_db(0.0, 680_mhz), ContractViolation);
  EXPECT_THROW(m.median_db(-3.0, 680_mhz), ContractViolation);
}

TEST(Contracts, LinkBudgetRejectsNegativePathLoss) {
  ScopedFailureMode guard(FailureMode::kThrow);
  channel::LinkBudget b;
  EXPECT_THROW(b.backscatter_rx_dbm(dsp::Db{-1.0}, 40.0_db),
               ContractViolation);
}

TEST(Contracts, FftPlanRejectsMismatchedInput) {
  ScopedFailureMode guard(FailureMode::kThrow);
  const dsp::FftPlan plan(128);
  dsp::cvec wrong(64);
  EXPECT_THROW((void)plan.forward(wrong), ContractViolation);
}

TEST(Contracts, CellConfigRejectsOutOfRangeSymbol) {
  ScopedFailureMode guard(FailureMode::kThrow);
  const lte::CellConfig cell;
  EXPECT_THROW((void)cell.symbol_offset_in_slot(lte::kSymbolsPerSlot),
               ContractViolation);
  EXPECT_THROW((void)cell.cp_length(99), ContractViolation);
}

TEST(Contracts, PacketCodecRejectsDegenerateSizes) {
  ScopedFailureMode guard(FailureMode::kThrow);
  EXPECT_THROW(core::PacketCodec(32, core::Fec::kNone), ContractViolation);
  EXPECT_THROW(core::split_bits(std::vector<std::uint8_t>(8, 1), 0),
               ContractViolation);
}

}  // namespace
