// Compile-time contract of the observability macros when disabled: this
// TU forces LSCATTER_OBS_ENABLED=0 before including obs.hpp (regardless
// of how the library was built), and checks that every macro compiles to
// a true no-op — no registry traffic, no argument evaluation, and legal
// in single-statement positions.

#define LSCATTER_OBS_ENABLED 0
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include "obs/registry.hpp"

namespace {

using namespace lscatter;

TEST(ObsDisabled, MacrosDoNotTouchTheRegistry) {
  LSCATTER_OBS_COUNTER_INC("test.disabled.counter");
  LSCATTER_OBS_COUNTER_ADD("test.disabled.counter", 5);
  LSCATTER_OBS_GAUGE_SET("test.disabled.gauge", 1.0);
  LSCATTER_OBS_GAUGE_MAX("test.disabled.gauge", 2.0);
  LSCATTER_OBS_HISTOGRAM_RECORD("test.disabled.hist", 0.5);
  {
    LSCATTER_OBS_SPAN("test.disabled.span");
    LSCATTER_OBS_TIMER("test.disabled.timer");
  }

  const obs::Registry& reg = obs::Registry::instance();
  EXPECT_EQ(reg.find_counter("test.disabled.counter"), nullptr);
  EXPECT_EQ(reg.find_gauge("test.disabled.gauge"), nullptr);
  EXPECT_EQ(reg.find_histogram("test.disabled.hist"), nullptr);
  EXPECT_EQ(reg.find_histogram("test.disabled.span.seconds"), nullptr);
  EXPECT_EQ(reg.find_histogram("test.disabled.timer.seconds"), nullptr);
}

TEST(ObsDisabled, MacroArgumentsAreNotEvaluated) {
  int evaluations = 0;
  LSCATTER_OBS_COUNTER_ADD("test.disabled.eval", ++evaluations);
  LSCATTER_OBS_GAUGE_SET("test.disabled.eval", ++evaluations);
  LSCATTER_OBS_GAUGE_MAX("test.disabled.eval", ++evaluations);
  LSCATTER_OBS_HISTOGRAM_RECORD("test.disabled.eval", ++evaluations);
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsDisabled, MacrosAreSingleStatements) {
  // Must behave as one statement after if/else without braces.
  const bool flag = true;
  if (flag)
    LSCATTER_OBS_COUNTER_INC("test.disabled.branchy");
  else
    LSCATTER_OBS_COUNTER_INC("test.disabled.branchy_else");
  EXPECT_EQ(obs::Registry::instance().find_counter(
                "test.disabled.branchy"),
            nullptr);
}

}  // namespace
