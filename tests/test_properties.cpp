// Randomized property tests: invariants that must hold for arbitrary
// configurations and seeds (the kind of thing unit tests with fixed
// values miss).

#include <gtest/gtest.h>

#include "core/framing.hpp"
#include "core/link_simulator.hpp"
#include "core/scenario.hpp"
#include "lte/enodeb.hpp"
#include "lte/transport.hpp"
#include "tag/tag_controller.hpp"

namespace {

using namespace lscatter;

TEST(Properties, LinkMetricsInvariantsUnderRandomConfigs) {
  dsp::Rng rng(0xFEED);
  for (int trial = 0; trial < 6; ++trial) {
    core::ScenarioOptions opt;
    opt.seed = rng.next_u64();
    opt.bandwidth = lte::kAllBandwidths[rng.uniform_int(6)];
    const auto scene = static_cast<core::Scene>(rng.uniform_int(3));
    core::LinkConfig cfg = core::make_scenario(scene, opt);
    cfg.geometry.enb_tag_ft = rng.uniform(1.0, 40.0);
    cfg.geometry.tag_ue_ft = rng.uniform(1.0, 120.0);
    if (rng.bernoulli(0.3)) cfg.schedule.repetition = 2;
    if (rng.bernoulli(0.3)) cfg.fec = core::Fec::kConvolutional;

    core::LinkSimulator sim(cfg);
    const auto m = sim.run(6);

    EXPECT_LE(m.packets_detected, m.packets_sent);
    EXPECT_LE(m.packets_ok, m.packets_detected);
    EXPECT_LE(m.bit_errors, m.bits_sent);
    EXPECT_LE(m.bits_delivered, m.bits_sent);
    EXPECT_LE(m.bits_crc_ok, m.bits_sent);
    EXPECT_GE(m.ber(), 0.0);
    EXPECT_LE(m.ber(), 1.0);
    EXPECT_GE(m.throughput_bps(), 0.0);
    EXPECT_LE(m.goodput_bps(), m.throughput_bps() + 1.0);
    const auto& d = sim.last_drop();
    EXPECT_LT(d.backscatter_rx_dbm, d.direct_rx_dbm);
  }
}

TEST(Properties, CodecRoundTripsForRandomSizesAndFec) {
  dsp::Rng rng(0xC0DE);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t coded = 120 + rng.uniform_int(4000);
    const core::Fec fec = rng.bernoulli(0.5)
                              ? core::Fec::kConvolutional
                              : core::Fec::kNone;
    const core::PacketCodec codec(coded, fec);
    ASSERT_GT(codec.payload_bits(), 0u);
    ASSERT_LT(codec.payload_bits(), coded);
    const auto payload = rng.bits(codec.payload_bits());
    const auto onair = codec.encode(payload);
    ASSERT_EQ(onair.size(), coded);
    const auto decoded = codec.decode(onair);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(Properties, TransportSegmentationConservesBits) {
  dsp::Rng rng(0x5E6);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t capacity = 30 + rng.uniform_int(100000);
    const auto layout = lte::segment(capacity);
    std::size_t total = 0;
    for (const auto& b : layout) {
      EXPECT_GT(b.info_bits, 0u);
      EXPECT_LE(b.info_bits + lte::kBlockCrcBits, lte::kMaxCodeBlockBits);
      total += b.info_bits + lte::kBlockCrcBits;
    }
    EXPECT_EQ(total, capacity);
  }
}

TEST(Properties, TagPatternDeviatesOnlyInsideModulationWindows) {
  dsp::Rng rng(0x7A6);
  for (int trial = 0; trial < 5; ++trial) {
    lte::CellConfig cell;
    cell.bandwidth = lte::kAllBandwidths[rng.uniform_int(6)];
    tag::TagScheduleConfig sched;
    if (rng.bernoulli(0.5)) sched.repetition = 2;
    tag::TagController ctl(cell, sched);
    const std::size_t sf = rng.uniform_int(20);
    if (ctl.is_listening_subframe(sf)) continue;

    const std::size_t n_sym = ctl.modulatable_symbols(sf).size();
    std::vector<std::vector<std::uint8_t>> payloads(
        n_sym > 0 ? n_sym - 1 : 0);
    for (auto& p : payloads) p = rng.bits(ctl.bits_per_symbol());
    const auto plan = ctl.plan_subframe(sf, true, payloads);
    const auto units = tag::expand_to_units(cell, plan);

    // Outside every useful-window modulation span, the pattern is 1.
    const std::size_t start = ctl.modulation_start_unit();
    const std::size_t n_sc = cell.n_subcarriers();
    for (std::size_t n = 0; n < units.size(); ++n) {
      if (units[n] == 1) continue;
      // Find the symbol this sample belongs to.
      bool inside_some_window = false;
      for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
        const std::size_t useful =
            lte::symbol_offset_in_subframe(cell, l) +
            cell.cp_length(l % lte::kSymbolsPerSlot);
        if (n >= useful + start && n < useful + start + n_sc) {
          inside_some_window = true;
          break;
        }
      }
      ASSERT_TRUE(inside_some_window) << "zero unit outside window at "
                                      << n;
    }
  }
}

TEST(Properties, EnodebSubframesAreAlwaysFullLengthAndFinite) {
  dsp::Rng rng(0xE0DE);
  for (int trial = 0; trial < 5; ++trial) {
    lte::Enodeb::Config cfg;
    cfg.cell.bandwidth = lte::kAllBandwidths[rng.uniform_int(6)];
    cfg.cell.n_id_1 = static_cast<std::uint16_t>(rng.uniform_int(168));
    cfg.cell.n_id_2 = static_cast<std::uint8_t>(rng.uniform_int(3));
    cfg.modulation = static_cast<lte::Modulation>(rng.uniform_int(3));
    cfg.seed = rng.next_u64();
    lte::Enodeb enb(cfg);
    for (int sf = 0; sf < 3; ++sf) {
      const auto tx = enb.next_subframe();
      ASSERT_EQ(tx.samples.size(), cfg.cell.samples_per_subframe());
      for (const auto v : tx.samples) {
        ASSERT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
      }
      ASSERT_FALSE(tx.payload_bits.empty());
    }
  }
}

}  // namespace
