// Chrome trace-event export: record real nested spans on two threads,
// export through obs::trace_from_events / trace_from_report, parse the
// emitted JSON back with the in-tree parser, and verify the track and
// nesting structure a trace viewer would reconstruct. Uses ScopedSpan
// directly (not the macros) so the checks hold in -DLSCATTER_OBS=OFF
// builds too.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace {

using namespace lscatter;

// outer -> inner nested pair on the calling thread.
void record_nested_pair(const char* outer, const char* inner) {
  obs::ScopedSpan o(outer);
  obs::ScopedSpan i(inner);
}

// All "ph":"X" events from a parsed trace document.
std::vector<const obs::json::Value*> complete_events(
    const obs::json::Value& trace) {
  std::vector<const obs::json::Value*> out;
  const obs::json::Value* events = trace.find("traceEvents");
  if (events == nullptr) return out;
  for (const obs::json::Value& e : events->as_array()) {
    if (e.find("ph")->as_string() == "X") out.push_back(&e);
  }
  return out;
}

const obs::json::Value* event_named(
    const std::vector<const obs::json::Value*>& events,
    const std::string& name) {
  for (const auto* e : events) {
    if (e->find("name")->as_string() == name) return e;
  }
  return nullptr;
}

TEST(ObsTrace, TwoThreadRoundTripThroughParser) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();

  record_nested_pair("test.trace.main_outer", "test.trace.main_inner");
  std::thread worker(record_nested_pair, "test.trace.worker_outer",
                     "test.trace.worker_inner");
  worker.join();

  const obs::json::Value trace = obs::trace_from_events(sink.snapshot());
  const auto parsed = obs::json::parse(trace.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("displayTimeUnit")->as_string(), "ns");

  const auto events = complete_events(*parsed);
  ASSERT_EQ(events.size(), 4u);

  // The two threads land on distinct tracks, nested pairs share one.
  const auto* main_outer = event_named(events, "test.trace.main_outer");
  const auto* main_inner = event_named(events, "test.trace.main_inner");
  const auto* worker_outer = event_named(events, "test.trace.worker_outer");
  const auto* worker_inner = event_named(events, "test.trace.worker_inner");
  ASSERT_NE(main_outer, nullptr);
  ASSERT_NE(main_inner, nullptr);
  ASSERT_NE(worker_outer, nullptr);
  ASSERT_NE(worker_inner, nullptr);
  EXPECT_EQ(main_outer->find("tid")->as_number(),
            main_inner->find("tid")->as_number());
  EXPECT_EQ(worker_outer->find("tid")->as_number(),
            worker_inner->find("tid")->as_number());
  EXPECT_NE(main_outer->find("tid")->as_number(),
            worker_outer->find("tid")->as_number());

  // Nesting: inner is parented on outer (args.parent_seq == outer seq)
  // and contained in time on both tracks. ts/dur are microseconds.
  const std::pair<const obs::json::Value*, const obs::json::Value*>
      tracks[] = {{main_outer, main_inner}, {worker_outer, worker_inner}};
  for (const auto& [outer, inner] : tracks) {
    EXPECT_EQ(inner->find("args")->find("parent_seq")->as_number(),
              outer->find("args")->find("seq")->as_number());
    EXPECT_EQ(outer->find("args")->find("parent_seq")->kind(),
              obs::json::Value::Kind::kNull);
    EXPECT_EQ(inner->find("args")->find("depth")->as_number(), 1.0);
    EXPECT_EQ(outer->find("args")->find("depth")->as_number(), 0.0);
    const double o_ts = outer->find("ts")->as_number();
    const double o_end = o_ts + outer->find("dur")->as_number();
    const double i_ts = inner->find("ts")->as_number();
    const double i_end = i_ts + inner->find("dur")->as_number();
    EXPECT_GE(i_ts, o_ts);
    EXPECT_LE(i_end, o_end + 1e-6);  // µs rounding slack
  }

  // One thread_name metadata record per track.
  int metadata = 0;
  for (const obs::json::Value& e :
       parsed->find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() != "M") continue;
    EXPECT_EQ(e.find("name")->as_string(), "thread_name");
    EXPECT_NE(e.find("args")->find("name"), nullptr);
    ++metadata;
  }
  EXPECT_EQ(metadata, 2);
}

// All flow events (`cat:"flow"`) from a parsed trace document.
std::vector<const obs::json::Value*> flow_events(
    const obs::json::Value& trace) {
  std::vector<const obs::json::Value*> out;
  const obs::json::Value* events = trace.find("traceEvents");
  if (events == nullptr) return out;
  for (const obs::json::Value& e : events->as_array()) {
    const obs::json::Value* cat = e.find("cat");
    if (cat != nullptr && cat->as_string() == "flow") out.push_back(&e);
  }
  return out;
}

TEST(ObsTrace, FlowAcrossThreeThreadsLinksIntoOneArc) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();

  // One logical operation hopping across three threads — the sim_pool
  // shape: claim on a worker, execute on a worker, deliver on the
  // consumer. Joining between legs gives strictly ordered start times.
  constexpr std::uint64_t kFlow = 77;
  std::thread t1([] {
    obs::ScopedSpan s("test.flow.enqueue", nullptr, kFlow);
  });
  t1.join();
  std::thread t2([] {
    obs::ScopedSpan s("test.flow.execute", nullptr, kFlow);
  });
  t2.join();
  std::thread t3([] {
    obs::ScopedSpan s("test.flow.deliver", nullptr, kFlow);
  });
  t3.join();
  {  // unrelated span, no flow — must not join the arc
    obs::ScopedSpan s("test.flow.bystander");
  }

  const obs::json::Value trace = obs::trace_from_events(sink.snapshot());
  const auto parsed = obs::json::parse(trace.dump(2));
  ASSERT_TRUE(parsed.has_value());

  const auto flows = flow_events(*parsed);
  ASSERT_EQ(flows.size(), 3u);

  // Begin/end pairing: exactly one "s" and one "f" (binding point "e"),
  // with the middle leg a "t" step, all under the same flow id.
  int begins = 0, steps = 0, finishes = 0;
  for (const auto* e : flows) {
    EXPECT_EQ(e->find("id")->as_number(), static_cast<double>(kFlow));
    const std::string ph = e->find("ph")->as_string();
    if (ph == "s") {
      ++begins;
    } else if (ph == "t") {
      ++steps;
    } else if (ph == "f") {
      ++finishes;
      ASSERT_NE(e->find("bp"), nullptr);
      EXPECT_EQ(e->find("bp")->as_string(), "e");
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(steps, 1);
  EXPECT_EQ(finishes, 1);

  // Each flow event binds to its slice: same tid and ts as the X event
  // of the leg it decorates, and the three legs sit on three distinct,
  // stable tracks (s on the first leg's track, f on the last leg's).
  const auto events = complete_events(*parsed);
  const auto* enq = event_named(events, "test.flow.enqueue");
  const auto* exe = event_named(events, "test.flow.execute");
  const auto* del = event_named(events, "test.flow.deliver");
  ASSERT_NE(enq, nullptr);
  ASSERT_NE(exe, nullptr);
  ASSERT_NE(del, nullptr);
  EXPECT_NE(enq->find("tid")->as_number(), exe->find("tid")->as_number());
  EXPECT_NE(exe->find("tid")->as_number(), del->find("tid")->as_number());
  for (const auto* e : flows) {
    const std::string ph = e->find("ph")->as_string();
    const auto* leg = ph == "s" ? enq : ph == "t" ? exe : del;
    EXPECT_EQ(e->find("tid")->as_number(), leg->find("tid")->as_number());
    EXPECT_EQ(e->find("ts")->as_number(), leg->find("ts")->as_number());
  }

  // The X slices themselves carry the flow id in args; the bystander
  // does not.
  EXPECT_EQ(enq->find("args")->find("flow")->as_number(),
            static_cast<double>(kFlow));
  const auto* bystander = event_named(events, "test.flow.bystander");
  ASSERT_NE(bystander, nullptr);
  EXPECT_EQ(bystander->find("args")->find("flow"), nullptr);
}

TEST(ObsTrace, SingleSpanFlowGetsNoDanglingArc) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();
  {
    obs::ScopedSpan s("test.flow.lonely", nullptr, 123);
  }
  const obs::json::Value trace = obs::trace_from_events(sink.snapshot());
  // One slice, zero flow events: an s without an f would render as a
  // dangling arrow in Perfetto.
  EXPECT_EQ(complete_events(trace).size(), 1u);
  EXPECT_TRUE(flow_events(trace).empty());
}

TEST(ObsTrace, FlowSurvivesReportRoundTrip) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();
  std::thread a([] { obs::ScopedSpan s("test.flow.rt_a", nullptr, 9); });
  a.join();
  std::thread b([] { obs::ScopedSpan s("test.flow.rt_b", nullptr, 9); });
  b.join();

  const obs::json::Value live = obs::trace_from_events(sink.snapshot());
  const obs::json::Value report = obs::build_report("flow-trace-test");
  const auto from_report = obs::trace_from_report(report);
  ASSERT_TRUE(from_report.has_value());
  EXPECT_EQ(from_report->dump(2), live.dump(2));
  EXPECT_EQ(flow_events(*from_report).size(), 2u);
}

TEST(ObsTrace, ReportAndLiveSinkProduceSameTrace) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();
  record_nested_pair("test.trace.rep_outer", "test.trace.rep_inner");

  const obs::json::Value live = obs::trace_from_events(sink.snapshot());
  const obs::json::Value report = obs::build_report("trace-test");
  const auto from_report = obs::trace_from_report(report);
  ASSERT_TRUE(from_report.has_value());
  EXPECT_EQ(from_report->dump(2), live.dump(2));
}

TEST(ObsTrace, ReportWithoutSpansYieldsNullopt) {
  obs::ReportOptions options;
  options.max_span_events = 0;
  const obs::json::Value report =
      obs::build_report("spanless", options);
  EXPECT_FALSE(obs::trace_from_report(report).has_value());
}

TEST(ObsTrace, EnvHookWritesParsableTraceFile) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();
  record_nested_pair("test.trace.env_outer", "test.trace.env_inner");

  const std::string path =
      ::testing::TempDir() + "lscatter_obs_trace_test.json";
  ASSERT_EQ(setenv("LSCATTER_OBS_TRACE", path.c_str(), 1), 0);
  obs::write_report_from_env("trace-env-test");
  unsetenv("LSCATTER_OBS_TRACE");

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const auto parsed = obs::json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(complete_events(*parsed).size(), 2u);
}

TEST(ObsTrace, UnwritableTracePathDoesNotCrash) {
  ASSERT_EQ(
      setenv("LSCATTER_OBS_TRACE", "/dev/null/lscatter/t.json", 1),
      0);
  obs::write_report_from_env("trace-env-fail");  // must not throw/abort
  unsetenv("LSCATTER_OBS_TRACE");
}

}  // namespace
