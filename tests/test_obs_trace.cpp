// Chrome trace-event export: record real nested spans on two threads,
// export through obs::trace_from_events / trace_from_report, parse the
// emitted JSON back with the in-tree parser, and verify the track and
// nesting structure a trace viewer would reconstruct. Uses ScopedSpan
// directly (not the macros) so the checks hold in -DLSCATTER_OBS=OFF
// builds too.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace {

using namespace lscatter;

// outer -> inner nested pair on the calling thread.
void record_nested_pair(const char* outer, const char* inner) {
  obs::ScopedSpan o(outer);
  obs::ScopedSpan i(inner);
}

// All "ph":"X" events from a parsed trace document.
std::vector<const obs::json::Value*> complete_events(
    const obs::json::Value& trace) {
  std::vector<const obs::json::Value*> out;
  const obs::json::Value* events = trace.find("traceEvents");
  if (events == nullptr) return out;
  for (const obs::json::Value& e : events->as_array()) {
    if (e.find("ph")->as_string() == "X") out.push_back(&e);
  }
  return out;
}

const obs::json::Value* event_named(
    const std::vector<const obs::json::Value*>& events,
    const std::string& name) {
  for (const auto* e : events) {
    if (e->find("name")->as_string() == name) return e;
  }
  return nullptr;
}

TEST(ObsTrace, TwoThreadRoundTripThroughParser) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();

  record_nested_pair("test.trace.main_outer", "test.trace.main_inner");
  std::thread worker(record_nested_pair, "test.trace.worker_outer",
                     "test.trace.worker_inner");
  worker.join();

  const obs::json::Value trace = obs::trace_from_events(sink.snapshot());
  const auto parsed = obs::json::parse(trace.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("displayTimeUnit")->as_string(), "ns");

  const auto events = complete_events(*parsed);
  ASSERT_EQ(events.size(), 4u);

  // The two threads land on distinct tracks, nested pairs share one.
  const auto* main_outer = event_named(events, "test.trace.main_outer");
  const auto* main_inner = event_named(events, "test.trace.main_inner");
  const auto* worker_outer = event_named(events, "test.trace.worker_outer");
  const auto* worker_inner = event_named(events, "test.trace.worker_inner");
  ASSERT_NE(main_outer, nullptr);
  ASSERT_NE(main_inner, nullptr);
  ASSERT_NE(worker_outer, nullptr);
  ASSERT_NE(worker_inner, nullptr);
  EXPECT_EQ(main_outer->find("tid")->as_number(),
            main_inner->find("tid")->as_number());
  EXPECT_EQ(worker_outer->find("tid")->as_number(),
            worker_inner->find("tid")->as_number());
  EXPECT_NE(main_outer->find("tid")->as_number(),
            worker_outer->find("tid")->as_number());

  // Nesting: inner is parented on outer (args.parent_seq == outer seq)
  // and contained in time on both tracks. ts/dur are microseconds.
  const std::pair<const obs::json::Value*, const obs::json::Value*>
      tracks[] = {{main_outer, main_inner}, {worker_outer, worker_inner}};
  for (const auto& [outer, inner] : tracks) {
    EXPECT_EQ(inner->find("args")->find("parent_seq")->as_number(),
              outer->find("args")->find("seq")->as_number());
    EXPECT_EQ(outer->find("args")->find("parent_seq")->kind(),
              obs::json::Value::Kind::kNull);
    EXPECT_EQ(inner->find("args")->find("depth")->as_number(), 1.0);
    EXPECT_EQ(outer->find("args")->find("depth")->as_number(), 0.0);
    const double o_ts = outer->find("ts")->as_number();
    const double o_end = o_ts + outer->find("dur")->as_number();
    const double i_ts = inner->find("ts")->as_number();
    const double i_end = i_ts + inner->find("dur")->as_number();
    EXPECT_GE(i_ts, o_ts);
    EXPECT_LE(i_end, o_end + 1e-6);  // µs rounding slack
  }

  // One thread_name metadata record per track.
  int metadata = 0;
  for (const obs::json::Value& e :
       parsed->find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() != "M") continue;
    EXPECT_EQ(e.find("name")->as_string(), "thread_name");
    EXPECT_NE(e.find("args")->find("name"), nullptr);
    ++metadata;
  }
  EXPECT_EQ(metadata, 2);
}

TEST(ObsTrace, ReportAndLiveSinkProduceSameTrace) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();
  record_nested_pair("test.trace.rep_outer", "test.trace.rep_inner");

  const obs::json::Value live = obs::trace_from_events(sink.snapshot());
  const obs::json::Value report = obs::build_report("trace-test");
  const auto from_report = obs::trace_from_report(report);
  ASSERT_TRUE(from_report.has_value());
  EXPECT_EQ(from_report->dump(2), live.dump(2));
}

TEST(ObsTrace, ReportWithoutSpansYieldsNullopt) {
  obs::ReportOptions options;
  options.max_span_events = 0;
  const obs::json::Value report =
      obs::build_report("spanless", options);
  EXPECT_FALSE(obs::trace_from_report(report).has_value());
}

TEST(ObsTrace, EnvHookWritesParsableTraceFile) {
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.clear();
  record_nested_pair("test.trace.env_outer", "test.trace.env_inner");

  const std::string path =
      ::testing::TempDir() + "lscatter_obs_trace_test.json";
  ASSERT_EQ(setenv("LSCATTER_OBS_TRACE", path.c_str(), 1), 0);
  obs::write_report_from_env("trace-env-test");
  unsetenv("LSCATTER_OBS_TRACE");

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const auto parsed = obs::json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(complete_events(*parsed).size(), 2u);
}

TEST(ObsTrace, UnwritableTracePathDoesNotCrash) {
  ASSERT_EQ(
      setenv("LSCATTER_OBS_TRACE", "/dev/null/lscatter/t.json", 1),
      0);
  obs::write_report_from_env("trace-env-fail");  // must not throw/abort
  unsetenv("LSCATTER_OBS_TRACE");
}

}  // namespace
