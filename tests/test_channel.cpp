// Channel models: path loss, shadowing, noise floor, TDL fading, AWGN,
// and the backscatter link budget.

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "channel/fading.hpp"
#include "channel/link_budget.hpp"
#include "channel/pathloss.hpp"
#include "dsp/db.hpp"
#include "dsp/units.hpp"

namespace {

using namespace lscatter;
using namespace lscatter::channel;
using namespace lscatter::dsp::unit_literals;
using dsp::cf32;
using dsp::cvec;
using dsp::Db;
using dsp::Hz;

TEST(PathLoss, FreeSpaceKnownValue) {
  // FSPL at 1 m, 2.4 GHz is ~40.05 dB.
  EXPECT_NEAR(PathLossModel::free_space_db(1.0, Hz{2.4e9}).value(), 40.05,
              0.1);
  // At 680 MHz, 1 m: ~29.1 dB.
  EXPECT_NEAR(PathLossModel::free_space_db(1.0, 680_mhz).value(), 29.1, 0.1);
}

TEST(PathLoss, MonotoneInDistance) {
  PathLossModel m;
  m.exponent = 2.3;
  Db prev{-1e9};
  for (double d = 0.3; d < 200.0; d *= 1.7) {
    const Db pl = m.median_db(d, 680_mhz);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(PathLoss, ExponentControlsSlope) {
  PathLossModel m2;
  m2.exponent = 2.0;
  PathLossModel m3;
  m3.exponent = 3.0;
  const Db delta2 =
      m2.median_db(100.0, 680_mhz) - m2.median_db(10.0, 680_mhz);
  const Db delta3 =
      m3.median_db(100.0, 680_mhz) - m3.median_db(10.0, 680_mhz);
  EXPECT_NEAR(delta2.value(), 20.0, 0.1);
  EXPECT_NEAR(delta3.value(), 30.0, 0.1);
}

TEST(PathLoss, ShadowingHasRequestedSigma) {
  PathLossModel m;
  m.exponent = 2.0;
  m.shadowing_sigma_db = 4.0_db;
  dsp::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(m.sample_db(10.0, 680_mhz, rng).value());
  }
  const double median = m.median_db(10.0, 680_mhz).value();
  double mean = 0.0;
  for (const double s : samples) mean += s;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (const double s : samples) var += (s - mean) * (s - mean);
  var /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean, median, 0.1);
  EXPECT_NEAR(std::sqrt(var), 4.0, 0.15);
}

TEST(NoiseFloor, ThermalAt20MhzWithNf) {
  // -174 + 10log10(18e6) + 6 = -95.4 dBm for the occupied 18 MHz.
  EXPECT_NEAR(noise_floor_dbm(Hz{18e6}, 6.0_db).value(), -95.4, 0.2);
}

TEST(Awgn, AddsRequestedPower) {
  cvec x(50000, cf32{});
  dsp::Rng rng(5);
  add_awgn(x, 0.25, rng);
  EXPECT_NEAR(dsp::mean_power(x), 0.25, 0.01);
}

TEST(Awgn, SnrVariantMatchesSignalPower) {
  dsp::Rng rng(7);
  cvec x(20000);
  for (auto& v : x) v = rng.complex_normal(4.0);
  cvec clean = x;
  add_awgn_snr(x, 10.0_db, rng);
  double noise = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) noise += std::norm(x[i] - clean[i]);
  noise /= static_cast<double>(x.size());
  EXPECT_NEAR(noise, 0.4, 0.03);  // 4.0 / 10 dB
}

TEST(Fading, UnitAveragePowerOverDraws) {
  FadingProfile p;
  p.n_taps = 6;
  p.rms_delay_spread_s = dsp::Seconds{100e-9};
  p.los = false;
  dsp::Rng rng(11);
  double power = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    TdlChannel ch(p, Hz{30.72e6}, rng);
    power += ch.power_gain();
  }
  EXPECT_NEAR(power / n, 1.0, 0.05);
}

TEST(Fading, FlatProfileIsNearlyDeterministic) {
  dsp::Rng rng(13);
  TdlChannel ch(FadingProfile::flat(), Hz{30.72e6}, rng);
  EXPECT_EQ(ch.tap_gains().size(), 1u);
  EXPECT_NEAR(std::abs(ch.tap_gains()[0]), 1.0, 0.05);
}

TEST(Fading, ApplyConvolvesWithDelays) {
  FadingProfile p = FadingProfile::flat();
  dsp::Rng rng(17);
  TdlChannel ch(p, Hz{30.72e6}, rng);
  cvec x = {cf32{1, 0}, cf32{0, 0}, cf32{0, 0}};
  const cvec y = ch.apply(x);
  EXPECT_EQ(y.size(), x.size());
  EXPECT_NEAR(std::abs(y[0]), std::abs(ch.tap_gains()[0]), 1e-5);
}

TEST(Fading, FrequencyResponseOfSingleTapIsFlat) {
  dsp::Rng rng(19);
  TdlChannel ch(FadingProfile::flat(), Hz{30.72e6}, rng);
  const cvec h = ch.frequency_response(64);
  for (const cf32 v : h) {
    EXPECT_NEAR(std::abs(v), std::abs(h[0]), 1e-4);
  }
}

TEST(LinkBudget, BackscatterIsDoublePathPlusTagLoss) {
  LinkBudget b;
  b.tx_power_dbm = 10.0_dbm;
  b.tag.conversion_loss_db = 3.92_db;
  b.tag.reflection_loss_db = 6.0_db;
  const dsp::Dbm rx = b.backscatter_rx_dbm(40.0_db, 50.0_db);
  EXPECT_NEAR(rx.value(), 10.0 - 40.0 - 50.0 - 9.92, 1e-9);
  EXPECT_GT(b.direct_rx_dbm(40.0_db), rx);
}

TEST(LinkBudget, AntennaGainsAdd) {
  LinkBudget b;
  b.tx_antenna_gain_db = 3.0_db;
  b.rx_antenna_gain_db = 4.0_db;
  b.tag_antenna_gain_db = 2.0_db;
  // Tag gain counts twice (in and out).
  EXPECT_NEAR((b.backscatter_rx_dbm(50.0_db, 50.0_db) -
               LinkBudget{}.backscatter_rx_dbm(50.0_db, 50.0_db))
                  .value(),
              3.0 + 4.0 + 2.0 * 2.0, 1e-9);
}

TEST(LinkBudget, SnrUsesNoiseFloor) {
  LinkBudget b;
  b.noise_figure_db = 6.0_db;
  const Db snr = b.backscatter_snr_db(30.0_db, 30.0_db, Hz{18e6});
  EXPECT_NEAR(snr.value(),
              (b.backscatter_rx_dbm(30.0_db, 30.0_db) - dsp::Dbm{-95.4})
                  .value(),
              0.2);
}

TEST(Db, ConversionsRoundTrip) {
  EXPECT_NEAR(dsp::db_to_lin(dsp::lin_to_db(7.3)), 7.3, 1e-9);
  EXPECT_NEAR(dsp::dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dsp::mw_to_dbm(100.0), 20.0, 1e-12);
  EXPECT_NEAR(dsp::db_to_amp(20.0), 10.0, 1e-9);
}

}  // namespace
