// Streaming receiver: packet extraction from a continuous stream fed in
// awkward chunk sizes.

#include <gtest/gtest.h>

#include "core/streaming_receiver.hpp"
#include "lte/enodeb.hpp"
#include "tag/modulator.hpp"
#include "tag/tag_controller.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

struct Stream {
  cvec rx;
  cvec ambient;
  std::vector<std::vector<std::uint8_t>> payloads;  // per data subframe
};

// Build `n_subframes` of tag traffic starting at subframe 0.
Stream make_stream(const lte::CellConfig& cell,
                   const tag::TagScheduleConfig& sched,
                   std::size_t n_subframes, std::uint64_t seed) {
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  ecfg.seed = seed;
  lte::Enodeb enb(ecfg);
  tag::TagController ctl(cell, sched);
  dsp::Rng prng(seed + 1);

  Stream s;
  for (std::size_t sf = 0; sf < n_subframes; ++sf) {
    const auto tx = enb.next_subframe();
    const std::size_t cap = ctl.packet_raw_bits(sf);
    tag::SubframePlan plan;
    if (!ctl.is_listening_subframe(sf) && cap > 32) {
      const core::PacketCodec codec(cap);
      auto payload = prng.bits(codec.payload_bits());
      const auto chunks =
          core::split_bits(codec.encode(payload), ctl.bits_per_symbol());
      plan = ctl.plan_subframe(sf, true, chunks);
      s.payloads.push_back(std::move(payload));
    } else {
      plan = ctl.plan_subframe(sf, false, {});
    }
    const auto pattern = tag::expand_to_units(cell, plan);
    const auto scat =
        tag::apply_pattern(tx.samples, pattern, 7, cf32{1e-3f, 4e-4f});
    s.rx.insert(s.rx.end(), scat.begin(), scat.end());
    s.ambient.insert(s.ambient.end(), tx.samples.begin(),
                     tx.samples.end());
  }
  return s;
}

TEST(StreamingReceiver, RecoversEveryPacketRegardlessOfChunking) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz5;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 12, 99);

  for (const std::size_t chunk : {1u, 777u, 7680u, 50000u}) {
    core::StreamingReceiver::Config cfg;
    cfg.cell = cell;
    cfg.schedule = sched;
    core::StreamingReceiver ue(cfg);

    std::vector<core::StreamingReceiver::PacketEvent> events;
    std::size_t pos = 0;
    while (pos < s.rx.size()) {
      const std::size_t n = std::min<std::size_t>(chunk, s.rx.size() - pos);
      auto out = ue.feed(
          std::span<const cf32>(s.rx).subspan(pos, n),
          std::span<const cf32>(s.ambient).subspan(pos, n));
      for (auto& e : out) events.push_back(std::move(e));
      pos += n;
    }
    // 12 subframes: subframes 9 is listening -> 11 packets.
    ASSERT_EQ(events.size(), s.payloads.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_TRUE(events[i].result.preamble_found);
      ASSERT_TRUE(events[i].result.payload.has_value());
      EXPECT_EQ(*events[i].result.payload, s.payloads[i]);
    }
    EXPECT_LT(ue.buffered_samples(), cell.samples_per_subframe());
  }
}

TEST(StreamingReceiver, TracksSubframePhaseAcrossListeningSlots) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 21, 7);

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  core::StreamingReceiver ue(cfg);
  const auto events = ue.feed(s.rx, s.ambient);
  // Subframes 9 and 19 are listening: 19 packets from 21 subframes.
  EXPECT_EQ(events.size(), 19u);
  EXPECT_EQ(ue.next_subframe_index(), 21u);
  // Event subframe indices skip the listening slots.
  for (const auto& e : events) {
    EXPECT_NE(e.first_subframe_index % 10, 9u);
  }
}

TEST(StreamingReceiver, HonorsNonZeroStartingSubframe) {
  // A receiver that joins the stream mid-frame (its LTE sync says the
  // first fed sample is subframe 7) must schedule listening slots and
  // sync-subframe capacities accordingly.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;

  // Build subframes 7..12 (subframe 9 is a listening slot, 10 is sync).
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  ecfg.seed = 21;
  lte::Enodeb enb(ecfg);
  tag::TagController ctl(cell, sched);
  dsp::Rng prng(22);
  cvec rx_s;
  cvec am_s;
  std::size_t expected_packets = 0;
  for (std::size_t sf = 7; sf < 13; ++sf) {
    const auto tx = enb.make_subframe(sf);
    const std::size_t cap = ctl.packet_raw_bits(sf);
    tag::SubframePlan plan;
    if (!ctl.is_listening_subframe(sf) && cap > 32) {
      const core::PacketCodec codec(cap);
      plan = ctl.plan_subframe(
          sf, true,
          core::split_bits(codec.encode(prng.bits(codec.payload_bits())),
                           ctl.bits_per_symbol()));
      ++expected_packets;
    } else {
      plan = ctl.plan_subframe(sf, false, {});
    }
    const auto pattern = tag::expand_to_units(cell, plan);
    const auto scat =
        tag::apply_pattern(tx.samples, pattern, 0, cf32{1e-3f, 0.0f});
    rx_s.insert(rx_s.end(), scat.begin(), scat.end());
    am_s.insert(am_s.end(), tx.samples.begin(), tx.samples.end());
  }

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  cfg.first_subframe_index = 7;
  core::StreamingReceiver ue(cfg);
  const auto events = ue.feed(rx_s, am_s);
  EXPECT_EQ(events.size(), expected_packets);  // 5 of 6 (sf 9 listens)
  EXPECT_EQ(ue.next_subframe_index(), 13u);
  for (const auto& e : events) {
    EXPECT_TRUE(e.result.preamble_found) << e.first_subframe_index;
    EXPECT_TRUE(e.result.payload.has_value());
  }
}

TEST(StreamingReceiver, AcquiresAlignmentFromUnalignedStream) {
  // The stream joins mid-subframe (a receiver with no prior LTE sync).
  // With acquire_alignment set, the receiver runs the FFT-based PSS/SSS
  // cell search on its buffer, drops everything before the found frame
  // boundary, and then recovers exactly the packets of the following
  // frames.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 25, 123);

  // Cut 4321 samples into subframe 0: the first complete frame in what
  // the receiver sees starts at original subframe 10.
  const std::size_t cut = 4321;
  const std::span<const cf32> rx =
      std::span<const cf32>(s.rx).subspan(cut);
  const std::span<const cf32> ambient =
      std::span<const cf32>(s.ambient).subspan(cut);

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  cfg.acquire_alignment = true;
  core::StreamingReceiver ue(cfg);
  EXPECT_FALSE(ue.aligned());

  // Feed in awkward chunks so acquisition happens mid-stream, not on a
  // single full-buffer call.
  std::vector<core::StreamingReceiver::PacketEvent> events;
  std::size_t pos = 0;
  while (pos < rx.size()) {
    const std::size_t n = std::min<std::size_t>(30000, rx.size() - pos);
    auto out = ue.feed(rx.subspan(pos, n), ambient.subspan(pos, n));
    for (auto& e : out) events.push_back(std::move(e));
    pos += n;
  }
  EXPECT_TRUE(ue.aligned());

  // Subframes 10..24 remain after acquisition; 19 is a listening slot,
  // so 14 packets, which line up with payloads[9..22] (payload 9 is the
  // first data subframe at or after original subframe 10).
  ASSERT_EQ(events.size(), 14u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(events[i].result.preamble_found) << i;
    ASSERT_TRUE(events[i].result.payload.has_value()) << i;
    EXPECT_EQ(*events[i].result.payload, s.payloads[9 + i]) << i;
  }
}

TEST(StreamingReceiver, AcquisitionKeepsBufferBoundedWithoutPss) {
  // Noise only: acquisition never succeeds, and the buffer must stay
  // bounded (the receiver keeps at most one frame while waiting).
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.acquire_alignment = true;
  core::StreamingReceiver ue(cfg);

  dsp::Rng rng(7);
  cvec noise(cell.samples_per_frame() * 3);
  for (auto& v : noise) v = rng.complex_normal(0.01);
  for (int rep = 0; rep < 3; ++rep) {
    const auto events = ue.feed(noise, noise);
    EXPECT_TRUE(events.empty());
  }
  EXPECT_FALSE(ue.aligned());
  EXPECT_LE(ue.buffered_samples(),
            cell.samples_per_frame() + cell.samples_per_subframe());
}

TEST(StreamingReceiver, EmptyFeedIsANoOp) {
  core::StreamingReceiver::Config cfg;
  cfg.cell.bandwidth = lte::Bandwidth::kMHz1_4;
  core::StreamingReceiver ue(cfg);
  EXPECT_TRUE(ue.feed({}, {}).empty());
  EXPECT_EQ(ue.buffered_samples(), 0u);
  EXPECT_EQ(ue.packets_demodulated(), 0u);
}

TEST(StreamingReceiver, ZeroLengthFeedsInterleavedWithOneSampleChunks) {
  // Degenerate SDR read pattern: every real sample is book-ended by
  // zero-length reads. Packet extraction and subframe phase must match a
  // single bulk feed, including across the packet boundary where the
  // buffer drains. Same cell/seed as the chunking sweep above, which
  // decodes cleanly in every build configuration.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz5;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 3, 99);

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  core::StreamingReceiver ue(cfg);

  std::vector<core::StreamingReceiver::PacketEvent> events;
  for (std::size_t pos = 0; pos < s.rx.size(); ++pos) {
    EXPECT_TRUE(ue.feed({}, {}).empty());
    auto out = ue.feed(std::span<const cf32>(s.rx).subspan(pos, 1),
                       std::span<const cf32>(s.ambient).subspan(pos, 1));
    for (auto& e : out) events.push_back(std::move(e));
    EXPECT_TRUE(ue.feed({}, {}).empty());
  }

  ASSERT_EQ(events.size(), s.payloads.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(events[i].result.preamble_found);
    ASSERT_TRUE(events[i].result.payload.has_value());
    EXPECT_EQ(*events[i].result.payload, s.payloads[i]);
  }
  EXPECT_EQ(ue.next_subframe_index(), 3u);
  EXPECT_EQ(ue.buffered_samples(), 0u);
}

TEST(StreamingReceiver, BufferedHighWaterMarkTracksWorstBacklog) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 4, 43);
  const std::size_t per_packet =
      sched.packet_subframes * cell.samples_per_subframe();

  // Sample-at-a-time feeding: the buffer never holds more than one
  // packet's worth (it drains the instant a packet completes).
  {
    core::StreamingReceiver::Config cfg;
    cfg.cell = cell;
    cfg.schedule = sched;
    core::StreamingReceiver ue(cfg);
    for (std::size_t pos = 0; pos < s.rx.size(); ++pos) {
      ue.feed(std::span<const cf32>(s.rx).subspan(pos, 1),
              std::span<const cf32>(s.ambient).subspan(pos, 1));
    }
    EXPECT_EQ(ue.buffered_samples_high_water(), per_packet);
  }

  // Bulk feeding: the whole stream is buffered before extraction, and
  // the mark survives the subsequent drain.
  {
    core::StreamingReceiver::Config cfg;
    cfg.cell = cell;
    cfg.schedule = sched;
    core::StreamingReceiver ue(cfg);
    ue.feed(s.rx, s.ambient);
    EXPECT_EQ(ue.buffered_samples_high_water(), s.rx.size());
    EXPECT_LT(ue.buffered_samples(), per_packet);
    EXPECT_EQ(ue.buffered_samples_high_water(), s.rx.size());
  }
}

TEST(StreamingReceiver, NotifyGapRestoresSubframePhase) {
  // An aligned receiver told about a whole-subframe hole must resume at
  // the correct absolute subframe index — listening-slot schedule and
  // sync-subframe capacities included.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 20, 55);
  const std::size_t spsf = cell.samples_per_subframe();

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  core::StreamingReceiver ue(cfg);

  // Subframes 0..6, then a 5-subframe hole, then 12..19.
  std::vector<core::StreamingReceiver::PacketEvent> events;
  for (const auto& e :
       ue.feed(std::span<const cf32>(s.rx).subspan(0, 7 * spsf),
               std::span<const cf32>(s.ambient).subspan(0, 7 * spsf))) {
    events.push_back(e);
  }
  ue.notify_gap(5 * spsf);
  EXPECT_EQ(ue.gaps_notified(), 1u);
  for (const auto& e : ue.feed(
           std::span<const cf32>(s.rx).subspan(12 * spsf),
           std::span<const cf32>(s.ambient).subspan(12 * spsf))) {
    events.push_back(e);
  }
  EXPECT_EQ(ue.next_subframe_index(), 20u);

  // Data subframes 0..6 and 12..19, minus listening slots 9/19 (only 19
  // is inside the fed ranges).
  std::vector<std::uint64_t> expect_sf;
  for (std::size_t sf = 0; sf < 7; ++sf) expect_sf.push_back(sf);
  for (std::size_t sf = 12; sf < 20; ++sf) {
    if (sf % 10 != 9) expect_sf.push_back(sf);
  }
  ASSERT_EQ(events.size(), expect_sf.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].first_subframe_index, expect_sf[i]) << i;
    EXPECT_TRUE(events[i].result.preamble_found) << i;
    // Sync subframes lose two symbols to PSS/SSS and decode marginally
    // at this SNR; phase tracking is what this test pins down.
    if (expect_sf[i] % 5 != 0) {
      EXPECT_TRUE(events[i].result.payload.has_value()) << i;
    }
  }
}

TEST(StreamingReceiver, NotifyGapMidSubframeSkipsToNextBoundary) {
  // A hole that ends mid-subframe: the receiver must discard the partial
  // subframe after the hole and resume clean at the next boundary.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 12, 56);
  const std::size_t spsf = cell.samples_per_subframe();

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  core::StreamingReceiver ue(cfg);

  ue.feed(std::span<const cf32>(s.rx).subspan(0, 3 * spsf),
          std::span<const cf32>(s.ambient).subspan(0, 3 * spsf));
  // Gap of 2.5 subframes: stream resumes at position 5.5 subframes;
  // the half subframe up to boundary 6 must be skipped.
  ue.notify_gap(2 * spsf + spsf / 2);
  std::vector<core::StreamingReceiver::PacketEvent> events;
  for (const auto& e : ue.feed(
           std::span<const cf32>(s.rx).subspan(5 * spsf + spsf / 2),
           std::span<const cf32>(s.ambient).subspan(5 * spsf + spsf / 2))) {
    events.push_back(e);
  }
  EXPECT_EQ(ue.next_subframe_index(), 12u);
  // Data subframes 6..11 minus listening slot 9.
  std::vector<std::uint64_t> expect_sf = {6, 7, 8, 10, 11};
  ASSERT_EQ(events.size(), expect_sf.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].first_subframe_index, expect_sf[i]) << i;
    EXPECT_TRUE(events[i].result.preamble_found) << i;
    if (expect_sf[i] % 5 != 0) {
      EXPECT_TRUE(events[i].result.payload.has_value()) << i;
    }
  }
}

TEST(StreamingReceiver, NotifyGapInAcquireModeForcesColdReacquisition) {
  // In acquisition mode a gap invalidates the frame alignment: the
  // receiver must drop to unaligned, re-run the PSS/SSS search on
  // post-gap samples, and come back decoding.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 45, 57);
  const std::size_t spsf = cell.samples_per_subframe();

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  cfg.acquire_alignment = true;
  core::StreamingReceiver ue(cfg);

  // Acquire on the first two frames.
  std::size_t events_before_gap = 0;
  for (std::size_t sf = 0; sf < 20; ++sf) {
    events_before_gap +=
        ue.feed(std::span<const cf32>(s.rx).subspan(sf * spsf, spsf),
                std::span<const cf32>(s.ambient).subspan(sf * spsf, spsf))
            .size();
  }
  EXPECT_TRUE(ue.aligned());
  EXPECT_GT(events_before_gap, 0u);

  // Drop 7.3 subframes of stream (not an integer number of subframes —
  // alignment is genuinely lost).
  const std::size_t gap = 7 * spsf + 3 * spsf / 10;
  ue.notify_gap(gap);
  EXPECT_FALSE(ue.aligned());
  EXPECT_EQ(ue.gaps_notified(), 1u);

  // Feed the rest of the stream from the post-gap position; the searcher
  // needs at least a frame to lock again, then packets resume.
  std::size_t events_after_gap = 0;
  std::size_t pos = 20 * spsf + gap;
  while (pos < s.rx.size()) {
    const std::size_t n = std::min<std::size_t>(30000, s.rx.size() - pos);
    events_after_gap +=
        ue.feed(std::span<const cf32>(s.rx).subspan(pos, n),
                std::span<const cf32>(s.ambient).subspan(pos, n))
            .size();
    pos += n;
  }
  EXPECT_TRUE(ue.aligned());
  EXPECT_GT(events_after_gap, 0u);
}

TEST(StreamingReceiver, FeedSpanStaysValidUntilNextFeed) {
  // The feed() return is a view into receiver-owned storage: its
  // contents must be stable and deep-copyable until the next feed call,
  // and slot reuse across calls must not leak stale payloads.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 12, 58);
  const std::size_t spsf = cell.samples_per_subframe();

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  core::StreamingReceiver ue(cfg);

  std::size_t idx = 0;
  for (std::size_t sf = 0; sf < 12; ++sf) {
    const auto out =
        ue.feed(std::span<const cf32>(s.rx).subspan(sf * spsf, spsf),
                std::span<const cf32>(s.ambient).subspan(sf * spsf, spsf));
    // Read through the span only (no copies) before the next feed.
    for (const auto& e : out) {
      if (e.first_subframe_index % 5 != 0) {
        ASSERT_TRUE(e.result.payload.has_value());
      }
      if (e.result.payload.has_value()) {
        EXPECT_EQ(*e.result.payload, s.payloads[idx]) << idx;
      }
      ++idx;
    }
  }
  EXPECT_EQ(idx, s.payloads.size());
}

TEST(StreamingReceiver, MismatchedFeedTruncatesToCommonPrefix) {
  // Release-mode contract: a mismatched (rx, ambient) call keeps the
  // common prefix so the streams stay aligned.
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 2, 47);

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  core::StreamingReceiver ue(cfg);

  // Cut mid-packet so the prefix stays buffered instead of draining.
  const std::size_t cut =
      sched.packet_subframes * cell.samples_per_subframe() / 2;
#ifdef NDEBUG
  // Feed rx with a longer tail than ambient: only `cut` samples count.
  ue.feed(std::span<const cf32>(s.rx).subspan(0, cut + 100),
          std::span<const cf32>(s.ambient).subspan(0, cut));
  EXPECT_EQ(ue.buffered_samples(), cut);
  // Feed the rest aligned; the stream continues from the prefix.
  ue.feed(std::span<const cf32>(s.rx).subspan(cut),
          std::span<const cf32>(s.ambient).subspan(cut));
  EXPECT_EQ(ue.next_subframe_index(), 2u);
#else
  // Debug builds assert on the mismatch; just check the aligned path.
  ue.feed(std::span<const cf32>(s.rx).subspan(0, cut),
          std::span<const cf32>(s.ambient).subspan(0, cut));
  EXPECT_EQ(ue.buffered_samples(), cut);
#endif
}

}  // namespace
