// Sim-pool stress: many cheap drops over an 8-worker team with a tight
// reorder window, so claim/backpressure/delivery interleavings get
// exercised hard. Built and run standalone under ThreadSanitizer by
// scripts/check.sh and the CI sanitize + nightly lanes (alongside the
// obs span stress); also part of the default ctest suite.

#include <gtest/gtest.h>

#include <vector>

#include "core/scenario.hpp"
#include "core/sim_pool.hpp"

namespace {

using namespace lscatter;

core::LinkConfig tiny_config(std::uint64_t seed) {
  core::ScenarioOptions opt;
  opt.bandwidth = lte::Bandwidth::kMHz1_4;
  opt.seed = seed;
  return core::make_scenario(core::Scene::kSmartHome, opt);
}

TEST(SimPoolStress, ManyDropsEightWorkersTightWindow) {
  const core::LinkConfig cfg = tiny_config(2026);
  const std::size_t drops = 48;

  core::PoolOptions options;
  options.threads = 8;
  options.window = 3;  // force frequent backpressure stalls
  std::vector<std::size_t> order;
  core::LinkMetrics total;
  core::for_each_drop(cfg, drops, 1, options,
                      [&](const core::DropOutcome& outcome) {
                        order.push_back(outcome.drop_index);
                        total += outcome.metrics;
                      });

  ASSERT_EQ(order.size(), drops);
  for (std::size_t i = 0; i < drops; ++i) EXPECT_EQ(order[i], i);
  EXPECT_GT(total.packets_sent, 0u);

  // The interleaving under load must not leak into the numbers.
  const core::DropSweep serial = core::run_drops_parallel(cfg, drops, 1, 1);
  EXPECT_TRUE(total == serial.total);
}

TEST(SimPoolStress, RepeatedSmallPoolsDoNotRace) {
  const core::LinkConfig cfg = tiny_config(4077);
  const core::DropSweep reference = core::run_drops_parallel(cfg, 5, 1, 1);
  // Spawning and tearing down worker teams back-to-back shakes out
  // lifetime bugs (joins, condvar notifies) that one long run hides.
  for (int round = 0; round < 6; ++round) {
    const core::DropSweep sweep = core::run_drops_parallel(cfg, 5, 1, 8);
    EXPECT_TRUE(sweep.total == reference.total) << "round " << round;
  }
}

}  // namespace
