// Tag controller: scheduling rules (PSS/SSS avoidance, listening
// subframes), modulation-window placement, repetition expansion, and the
// paper's §4.3 rate arithmetic.

#include <gtest/gtest.h>

#include "lte/ofdm.hpp"
#include "lte/signal_map.hpp"
#include "tag/tag_controller.hpp"

namespace {

using namespace lscatter;

lte::CellConfig cell20() {
  lte::CellConfig c;
  c.bandwidth = lte::Bandwidth::kMHz20;
  return c;
}

TEST(TagController, ListeningEveryResyncPeriod) {
  tag::TagScheduleConfig sched;
  sched.resync_period_subframes = 10;
  tag::TagController ctl(cell20(), sched);
  std::size_t listening = 0;
  for (std::size_t sf = 0; sf < 100; ++sf) {
    if (ctl.is_listening_subframe(sf)) ++listening;
  }
  EXPECT_EQ(listening, 10u);
  EXPECT_TRUE(ctl.is_listening_subframe(9));
  EXPECT_FALSE(ctl.is_listening_subframe(0));
}

TEST(TagController, AvoidsPssAndSssSymbols) {
  tag::TagController ctl(cell20(), {});
  // Sync subframes: symbols 5 (SSS) and 6 (PSS) are off-limits.
  EXPECT_FALSE(ctl.symbol_modulatable(0, lte::kPssSymbolIndex));
  EXPECT_FALSE(ctl.symbol_modulatable(0, lte::kSssSymbolIndex));
  EXPECT_FALSE(ctl.symbol_modulatable(5, lte::kPssSymbolIndex));
  EXPECT_FALSE(ctl.symbol_modulatable(15, lte::kSssSymbolIndex));
  EXPECT_TRUE(ctl.symbol_modulatable(0, 0));
  // Non-sync subframes: everything is fair game.
  for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
    EXPECT_TRUE(ctl.symbol_modulatable(1, l));
  }
}

TEST(TagController, ModulatableSymbolCounts) {
  tag::TagController ctl(cell20(), {});
  EXPECT_EQ(ctl.modulatable_symbols(0).size(), 12u);  // sync subframe
  EXPECT_EQ(ctl.modulatable_symbols(1).size(), 14u);
}

TEST(TagController, PacketRawBitsMatchesPaperArithmetic) {
  tag::TagController ctl(cell20(), {});
  // Non-sync subframe: (14 - 1 preamble) * 1200 = 15600.
  EXPECT_EQ(ctl.packet_raw_bits(1), 15600u);
  // Sync subframe: (12 - 1) * 1200 = 13200.
  EXPECT_EQ(ctl.packet_raw_bits(0), 13200u);
  // Listening subframe carries nothing.
  EXPECT_EQ(ctl.packet_raw_bits(9), 0u);
}

TEST(TagController, MaxDataSymbolsCapsPacket) {
  tag::TagScheduleConfig sched;
  sched.max_data_symbols_per_packet = 2;
  tag::TagController ctl(cell20(), sched);
  EXPECT_EQ(ctl.packet_raw_bits(1), 2400u);
}

TEST(TagController, RepetitionDividesInfoBits) {
  tag::TagScheduleConfig sched;
  sched.repetition = 8;
  tag::TagController ctl(cell20(), sched);
  EXPECT_EQ(ctl.units_per_symbol(), 1200u);
  EXPECT_EQ(ctl.bits_per_symbol(), 150u);
  EXPECT_EQ(ctl.packet_raw_bits(1), 13u * 150u);
}

TEST(TagController, ModulationWindowCenteredInUsefulPart) {
  tag::TagController ctl(cell20(), {});
  // (2048 - 1200) / 2 = 424 units on each side.
  EXPECT_EQ(ctl.modulation_start_unit(), 424u);
  EXPECT_EQ(ctl.offset_tolerance_units(), 424u);
  // 424 units at 30.72 Msps = 13.8 us one-sided tolerance.
  EXPECT_NEAR(424.0 / 30.72e6, 13.8e-6, 0.1e-6);
}

TEST(TagController, PlanPlacesPreambleThenData) {
  tag::TagController ctl(cell20(), {});
  std::vector<std::vector<std::uint8_t>> payloads(
      13, std::vector<std::uint8_t>(1200, 1));
  payloads[0][0] = 0;  // marker
  const auto plan = ctl.plan_subframe(1, true, payloads);
  EXPECT_FALSE(plan.listening);
  EXPECT_EQ(plan.symbols[0].kind, tag::SymbolPlan::Kind::kPreamble);
  EXPECT_EQ(plan.symbols[0].bits, ctl.preamble_pattern());
  EXPECT_EQ(plan.symbols[1].kind, tag::SymbolPlan::Kind::kData);
  EXPECT_EQ(plan.symbols[1].bits[0], 0);
  EXPECT_EQ(plan.symbols[13].kind, tag::SymbolPlan::Kind::kData);
}

TEST(TagController, ListeningPlanIsAllFiller) {
  tag::TagController ctl(cell20(), {});
  const auto plan = ctl.plan_subframe(9, true, {});
  EXPECT_TRUE(plan.listening);
  for (const auto& sp : plan.symbols) {
    EXPECT_EQ(sp.kind, tag::SymbolPlan::Kind::kFiller);
  }
}

TEST(TagController, ExpandPlacesBitsInsideUsefulWindows) {
  const auto cell = cell20();
  tag::TagController ctl(cell, {});
  std::vector<std::vector<std::uint8_t>> payloads(
      13, std::vector<std::uint8_t>(1200, 0));  // all-zero data
  const auto plan = ctl.plan_subframe(1, true, payloads);
  const auto units = tag::expand_to_units(cell, plan);
  ASSERT_EQ(units.size(), cell.samples_per_subframe());

  // Data symbol 1: zeros must sit exactly in
  // [useful + 424, useful + 424 + 1200).
  const std::size_t useful =
      lte::symbol_offset_in_subframe(cell, 1) + cell.cp_samples();
  for (std::size_t n = 0; n < cell.fft_size(); ++n) {
    const bool in_window = n >= 424 && n < 424 + 1200;
    EXPECT_EQ(units[useful + n], in_window ? 0 : 1) << "unit " << n;
  }
  // The CP of that symbol is filler.
  for (std::size_t n = 0; n < cell.cp_samples(); ++n) {
    EXPECT_EQ(units[lte::symbol_offset_in_subframe(cell, 1) + n], 1);
  }
}

TEST(TagController, RepetitionExpansionFillsConsecutiveUnits) {
  tag::TagScheduleConfig sched;
  sched.repetition = 4;
  const auto cell = cell20();
  tag::TagController ctl(cell, sched);
  std::vector<std::uint8_t> info(300, 1);
  info[2] = 0;  // bit 2 -> units 8..11 of the window
  const auto plan = ctl.plan_subframe(1, true, {info});
  const auto& bits = plan.symbols[1].bits;
  ASSERT_EQ(bits.size(), 1200u);
  for (std::size_t u = 0; u < 16; ++u) {
    EXPECT_EQ(bits[u], (u >= 8 && u < 12) ? 0 : 1) << "unit " << u;
  }
}

TEST(TagController, UsefulModulationOccupies54Point6Percent) {
  // Paper §3.2.3: 1200 / 2196 ~ 54.6% of the symbol duration (we use the
  // exact 2192 = 2048 + 144).
  const auto cell = cell20();
  const double ratio =
      1200.0 / static_cast<double>(cell.fft_size() + cell.cp_samples());
  EXPECT_NEAR(ratio, 0.546, 0.01);
}

}  // namespace
