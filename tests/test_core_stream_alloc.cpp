// Steady-state zero-allocation enforcement for the streaming decode hot
// path (DESIGN.md §15). This binary installs the counting operator-new
// hook from obs/alloc_probe.hpp (one TU only!) and proves that after a
// warmup pass, feeding IQ through StreamingReceiver — and pushing/popping
// through StreamRing — performs exactly zero heap allocations.

#include <gtest/gtest.h>

#include <span>

#include "core/framing.hpp"
#include "core/stream_ring.hpp"
#include "core/streaming_receiver.hpp"
#include "lte/enodeb.hpp"
#include "obs/alloc_probe.hpp"
#include "tag/modulator.hpp"
#include "tag/tag_controller.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

struct Stream {
  cvec rx;
  cvec ambient;
  std::size_t packets = 0;
};

Stream make_stream(const lte::CellConfig& cell,
                   const tag::TagScheduleConfig& sched,
                   std::size_t n_subframes, std::uint64_t seed) {
  lte::Enodeb::Config ecfg;
  ecfg.cell = cell;
  ecfg.seed = seed;
  lte::Enodeb enb(ecfg);
  tag::TagController ctl(cell, sched);
  dsp::Rng prng(seed + 1);

  Stream s;
  for (std::size_t sf = 0; sf < n_subframes; ++sf) {
    const auto tx = enb.next_subframe();
    const std::size_t cap = ctl.packet_raw_bits(sf);
    tag::SubframePlan plan;
    if (!ctl.is_listening_subframe(sf) && cap > 32) {
      const core::PacketCodec codec(cap);
      plan = ctl.plan_subframe(
          sf, true,
          core::split_bits(codec.encode(prng.bits(codec.payload_bits())),
                           ctl.bits_per_symbol()));
      ++s.packets;
    } else {
      plan = ctl.plan_subframe(sf, false, {});
    }
    const auto pattern = tag::expand_to_units(cell, plan);
    const auto scat =
        tag::apply_pattern(tx.samples, pattern, 7, cf32{1e-3f, 4e-4f});
    s.rx.insert(s.rx.end(), scat.begin(), scat.end());
    s.ambient.insert(s.ambient.end(), tx.samples.begin(),
                     tx.samples.end());
  }
  return s;
}

TEST(StreamAlloc, ProbeCountsThisTestsOwnAllocations) {
  const auto before = obs::alloc_probe_count();
  auto* v = new std::vector<int>(100);
  delete v;
  EXPECT_GE(obs::alloc_probe_count() - before, 1u);
}

TEST(StreamAlloc, SteadyStateFeedAllocatesNothing) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  // Three full frames: the per-subframe packet sizes cycle with period
  // 10 (sync subframes carry fewer bits), so one frame of warmup visits
  // every codec size the steady state will ever need.
  const Stream s = make_stream(cell, sched, 30, 4242);
  const std::size_t spsf = cell.samples_per_subframe();

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  core::StreamingReceiver ue(cfg);

  // Warmup: first full frame. Grows event slots, demod workspace, codec
  // cache, FFT scratch, obs metric registrations.
  std::size_t events = 0;
  for (std::size_t sf = 0; sf < 10; ++sf) {
    events += ue.feed(std::span<const cf32>(s.rx).subspan(sf * spsf, spsf),
                      std::span<const cf32>(s.ambient).subspan(sf * spsf,
                                                              spsf))
                  .size();
  }

  // Steady state: the remaining two frames must be allocation-free.
  const auto before = obs::alloc_probe_count();
  for (std::size_t sf = 10; sf < 30; ++sf) {
    events += ue.feed(std::span<const cf32>(s.rx).subspan(sf * spsf, spsf),
                      std::span<const cf32>(s.ambient).subspan(sf * spsf,
                                                              spsf))
                  .size();
  }
  const auto delta = obs::alloc_probe_count() - before;
  EXPECT_EQ(delta, 0u) << "steady-state feed() allocated " << delta
                       << " time(s)";
  EXPECT_EQ(events, s.packets);
}

TEST(StreamAlloc, RingPushPopAllocatesNothingAfterFirstLap) {
  core::StreamRing ring(1920, 8);
  cvec rx(1920, cf32{1.0f, 0.0f});
  core::StreamRing::Chunk out;

  // First lap sizes the pop target; a few unpopped pushes warm the
  // drop-oldest path (first use registers the obs drop counter).
  for (int k = 0; k < 8; ++k) {
    ring.push(rx, rx, 0.0);
    ASSERT_TRUE(ring.pop(out));
  }
  for (int k = 0; k < 10; ++k) {
    ring.push(rx, rx, 0.0);
  }
  while (ring.pop(out)) {
  }

  const auto before = obs::alloc_probe_count();
  for (int k = 0; k < 1000; ++k) {
    ring.push(rx, rx, 0.0);
    ASSERT_TRUE(ring.pop(out));
  }
  // Overrun path too: drop-oldest must not allocate either.
  for (int k = 0; k < 100; ++k) {
    ring.push(rx, rx, 0.0);
  }
  EXPECT_EQ(obs::alloc_probe_count() - before, 0u);
}

TEST(StreamAlloc, NotifyGapKeepsSteadyStateAllocationFree) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz1_4;
  tag::TagScheduleConfig sched;
  const Stream s = make_stream(cell, sched, 40, 17);
  const std::size_t spsf = cell.samples_per_subframe();

  core::StreamingReceiver::Config cfg;
  cfg.cell = cell;
  cfg.schedule = sched;
  core::StreamingReceiver ue(cfg);

  // Warmup frame + one gap (gap handling itself registers counters).
  for (std::size_t sf = 0; sf < 10; ++sf) {
    ue.feed(std::span<const cf32>(s.rx).subspan(sf * spsf, spsf),
            std::span<const cf32>(s.ambient).subspan(sf * spsf, spsf));
  }
  ue.notify_gap(10 * spsf);  // skip subframes 10..19

  const auto before = obs::alloc_probe_count();
  for (std::size_t sf = 20; sf < 30; ++sf) {
    ue.feed(std::span<const cf32>(s.rx).subspan(sf * spsf, spsf),
            std::span<const cf32>(s.ambient).subspan(sf * spsf, spsf));
  }
  ue.notify_gap(5 * spsf);  // skip 30..34
  for (std::size_t sf = 35; sf < 40; ++sf) {
    ue.feed(std::span<const cf32>(s.rx).subspan(sf * spsf, spsf),
            std::span<const cf32>(s.ambient).subspan(sf * spsf, spsf));
  }
  EXPECT_EQ(obs::alloc_probe_count() - before, 0u);
  EXPECT_EQ(ue.gaps_notified(), 2u);
}

}  // namespace
