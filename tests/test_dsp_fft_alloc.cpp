// Hot-path memory discipline (DESIGN.md §10): after warm-up, the in-place
// FFT transforms, the FFT correlator, and the in-place OFDM path must not
// touch the heap. Verified by counting every global operator new — the
// hooks below forward to malloc/free, so they compose with ASan's
// interceptors and the test runs in the sanitizer lanes too.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "lte/ofdm.hpp"
#include "lte/resource_grid.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(FftAlloc, ForwardInplaceIsAllocationFreeAfterWarmup) {
  for (const std::size_t n : {std::size_t{512}, std::size_t{1536},
                              std::size_t{2048}}) {
    dsp::FftPlan plan(n);
    dsp::Rng rng(n);
    cvec pristine(n);
    for (auto& v : pristine) v = rng.complex_normal();
    cvec x(n);

    dsp::FftPlan::Workspace ws = plan.make_workspace();
    // Warm-up: caller workspace is pre-sized by make_workspace(), the
    // thread-local scratch grows on first use.
    x = pristine;
    plan.forward_inplace(x, ws);
    x = pristine;
    plan.forward_inplace(x);

    const std::uint64_t before = allocation_count();
    for (int rep = 0; rep < 10; ++rep) {
      std::copy(pristine.begin(), pristine.end(), x.begin());
      plan.forward_inplace(x, ws);
      plan.inverse_inplace(x, ws);
      plan.forward_inplace(x);
      plan.inverse_inplace(x);
    }
    const std::uint64_t after = allocation_count();
    EXPECT_EQ(after, before) << "n=" << n;
  }
}

TEST(FftAlloc, FastCorrelateIntoIsAllocationFreeAfterWarmup) {
  dsp::Rng rng(23);
  cvec sig(7680);
  cvec pat(512);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  cvec out(sig.size() - pat.size() + 1);
  std::vector<float> nout(out.size());

  dsp::fast_correlate_into(sig, pat, out);  // warm the thread scratch
  dsp::fast_normalized_correlation_into(sig, pat, nout);

  const std::uint64_t before = allocation_count();
  for (int rep = 0; rep < 5; ++rep) {
    dsp::fast_correlate_into(sig, pat, out);
    dsp::fast_normalized_correlation_into(sig, pat, nout);
  }
  EXPECT_EQ(allocation_count(), before);
}

TEST(FftAlloc, OfdmIntoPathIsAllocationFreeAfterWarmup) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz10;
  lte::ResourceGrid grid(cell);
  dsp::Rng rng(31);
  for (std::size_t l = 0; l < grid.n_symbols(); ++l)
    for (auto& re : grid.symbol(l)) re = rng.complex_normal();
  const lte::OfdmModulator mod(cell);
  const lte::OfdmDemodulator demod(cell);
  cvec samples(cell.samples_per_subframe());
  lte::ResourceGrid rx(cell);

  // Warm-up pass registers the obs call-site metrics and grows the
  // per-thread FFT + demod scratch.
  mod.modulate_into(grid, samples);
  demod.demodulate_into(samples, rx);

  const std::uint64_t before = allocation_count();
  for (int rep = 0; rep < 5; ++rep) {
    mod.modulate_into(grid, samples);
    demod.demodulate_into(samples, rx);
  }
  EXPECT_EQ(allocation_count(), before);
}

}  // namespace
