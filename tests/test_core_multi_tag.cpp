// Multi-tag TDMA extension: slot sharing, fairness, and collisions.

#include <gtest/gtest.h>

#include "core/multi_tag.hpp"
#include "core/scenario.hpp"

namespace {

using namespace lscatter;

core::MultiTagConfig two_tags(std::size_t slots, std::size_t slot_a,
                              std::size_t slot_b) {
  core::MultiTagConfig cfg;
  core::ScenarioOptions opt;
  opt.seed = 71;
  cfg.base = core::make_scenario(core::Scene::kSmartHome, opt);
  cfg.base.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  cfg.n_slots = slots;
  cfg.tags.push_back({{3.0, 3.0, -1.0}, slot_a});
  cfg.tags.push_back({{4.0, 5.0, -1.0}, slot_b});
  return cfg;
}

TEST(MultiTag, SlottedTagsShareTheCellCleanly) {
  const auto cfg = two_tags(2, 0, 1);
  const auto res = core::run_multi_tag(cfg, 20);
  ASSERT_EQ(res.per_tag.size(), 2u);
  for (const auto& p : res.per_tag) {
    EXPECT_GT(p.metrics.packets_sent, 5u);
    EXPECT_EQ(p.metrics.packets_detected, p.metrics.packets_sent)
        << "tag " << p.tag_index;
    EXPECT_LT(p.metrics.ber(), 1e-3);
    // Each tag gets roughly half the single-tag rate.
    EXPECT_GT(p.metrics.throughput_bps(), 5.0e6);
    EXPECT_LT(p.metrics.throughput_bps(), 8.5e6);
  }
  // Aggregate stays near the single-tag ceiling.
  EXPECT_GT(res.aggregate_throughput_bps(), 11.5e6);
}

TEST(MultiTag, CollisionsShowCaptureEffect) {
  const auto cfg = two_tags(1, 0, 0);  // both tags in the only slot
  const auto res = core::run_multi_tag(cfg, 20);
  ASSERT_EQ(res.per_tag.size(), 2u);
  // Superposed scatters: the demodulator locks onto the stronger tag's
  // signal (capture); the weaker tag's packets are destroyed. With
  // random double-Rician gains at least one side must lose badly, and
  // the pair can never both run clean.
  const double ber0 = res.per_tag[0].metrics.ber();
  const double ber1 = res.per_tag[1].metrics.ber();
  EXPECT_GT(std::max(ber0, ber1), 0.03);
  EXPECT_LT(res.per_tag[0].metrics.packets_ok +
                res.per_tag[1].metrics.packets_ok,
            res.per_tag[0].metrics.packets_sent +
                res.per_tag[1].metrics.packets_sent);
  // Contrast: the slotted configuration in SlottedTagsShareTheCellCleanly
  // delivers everything.
}

TEST(MultiTag, FourSlotsScaleFairly) {
  core::MultiTagConfig cfg;
  core::ScenarioOptions opt;
  opt.seed = 73;
  cfg.base = core::make_scenario(core::Scene::kSmartHome, opt);
  cfg.base.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  cfg.n_slots = 4;
  for (std::size_t i = 0; i < 4; ++i) {
    cfg.tags.push_back({{3.0 + static_cast<double>(i), 3.0, -1.0}, i});
  }
  const auto res = core::run_multi_tag(cfg, 40);
  double min_t = 1e12;
  double max_t = 0.0;
  for (const auto& p : res.per_tag) {
    min_t = std::min(min_t, p.metrics.throughput_bps());
    max_t = std::max(max_t, p.metrics.throughput_bps());
  }
  EXPECT_GT(min_t, 1.0e6);
  // Fairness: within ~2x of each other (slot layout + sync subframes).
  EXPECT_LT(max_t / min_t, 2.0);
}

}  // namespace
