// SnapshotSeries (obs/snapshot.hpp): every-Nth-tick sampling, bounded
// ring overwrite with drop accounting, the columnar obs-series/1 JSON
// shape, and — the cost contract — zero heap allocations per sample
// after the first (warm-up) sample, proven with the same global
// operator-new hook as the DSP hot-path tests (DESIGN.md §10/§11).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace lscatter;

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(ObsSnapshot, SamplesEveryNthTick) {
  obs::Registry::instance().counter("test.snap.nth.events").add(1);
  obs::SnapshotSeries series({.capacity = 16, .every = 3});
  series.add_counter("test.snap.nth.events");

  for (int t = 1; t <= 10; ++t) series.tick(static_cast<double>(t));
  EXPECT_EQ(series.total_samples(), 3u);  // ticks 3, 6, 9
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.dropped(), 0u);

  const obs::json::Value j = series.to_json();
  const obs::json::Array& t = j.find("t")->as_array();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(t[2].as_number(), 9.0);
}

TEST(ObsSnapshot, RingOverwritesOldestAndCountsDropped) {
  obs::Registry::instance().gauge("test.snap.ring.level").set(1.0);
  obs::SnapshotSeries series({.capacity = 4, .every = 1});
  series.add_gauge("test.snap.ring.level");

  for (int t = 0; t < 10; ++t) series.tick(static_cast<double>(t));
  EXPECT_EQ(series.total_samples(), 10u);
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.dropped(), 6u);

  // Retained window is the newest 4 samples, oldest first.
  const obs::json::Value j = series.to_json();
  const obs::json::Array& t = j.find("t")->as_array();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t[0].as_number(), 6.0);
  EXPECT_DOUBLE_EQ(t[3].as_number(), 9.0);
  EXPECT_DOUBLE_EQ(j.find("dropped")->as_number(), 6.0);
}

TEST(ObsSnapshot, ColumnarJsonShapeAndChannelLabels) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test.snap.shape.frames").add(5);
  reg.gauge("test.snap.shape.hwm").set(2.5);
  reg.histogram("test.snap.shape.lat.seconds").record(1e-3);

  obs::SnapshotSeries series({.capacity = 8, .every = 1});
  series.add_counter("test.snap.shape.frames");
  series.add_gauge("test.snap.shape.hwm");
  series.add_histogram_quantile("test.snap.shape.lat.seconds", 0.50);
  series.add_histogram_quantile("test.snap.shape.lat.seconds", 0.99);
  series.add_histogram_count("test.snap.shape.lat.seconds");
  ASSERT_EQ(series.channel_count(), 5u);

  series.tick(1.0);
  reg.counter("test.snap.shape.frames").add(3);
  series.tick(2.0);

  const obs::json::Value j = series.to_json();
  EXPECT_EQ(j.find("schema")->as_string(), "lscatter.obs-series/1");
  EXPECT_DOUBLE_EQ(j.find("every")->as_number(), 1.0);

  const obs::json::Array& channels = j.find("channels")->as_array();
  ASSERT_EQ(channels.size(), 5u);
  EXPECT_EQ(channels[0].as_string(), "test.snap.shape.frames");
  EXPECT_EQ(channels[1].as_string(), "test.snap.shape.hwm");
  EXPECT_EQ(channels[2].as_string(), "test.snap.shape.lat.seconds.p50");
  EXPECT_EQ(channels[3].as_string(), "test.snap.shape.lat.seconds.p99");
  EXPECT_EQ(channels[4].as_string(), "test.snap.shape.lat.seconds.count");

  // Columnar: one array per channel, each parallel to t.
  const obs::json::Array& series_cols = j.find("series")->as_array();
  ASSERT_EQ(series_cols.size(), 5u);
  for (const auto& col : series_cols) {
    ASSERT_EQ(col.as_array().size(), 2u);
  }
  EXPECT_DOUBLE_EQ(series_cols[0].as_array()[0].as_number(), 5.0);
  EXPECT_DOUBLE_EQ(series_cols[0].as_array()[1].as_number(), 8.0);
  EXPECT_DOUBLE_EQ(series_cols[1].as_array()[0].as_number(), 2.5);
  // Log-bucket quantiles are approximate; the sampled p50 of a single
  // 1 ms recording lands in its bucket's neighborhood.
  const double p50 = series_cols[2].as_array()[0].as_number();
  EXPECT_GT(p50, 1e-4);
  EXPECT_LT(p50, 1e-2);
  EXPECT_DOUBLE_EQ(series_cols[4].as_array()[0].as_number(), 1.0);

  // The dump must re-parse (it's embedded into bench reports verbatim).
  EXPECT_TRUE(obs::json::parse(j.dump(-1)).has_value());
}

TEST(ObsSnapshot, SamplingIsAllocationFreeAfterWarmup) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Histogram& hist =
      reg.histogram("test.snap.alloc.lat.seconds");
  reg.counter("test.snap.alloc.events").add(1);
  reg.gauge("test.snap.alloc.hwm").set(1.0);
  for (int i = 0; i < 64; ++i) hist.record(1e-4 * (i + 1));

  obs::SnapshotSeries series({.capacity = 128, .every = 1});
  series.add_counter("test.snap.alloc.events");
  series.add_gauge("test.snap.alloc.hwm");
  series.add_histogram_quantile("test.snap.alloc.lat.seconds", 0.50);
  series.add_histogram_quantile("test.snap.alloc.lat.seconds", 0.99);
  series.add_histogram_count("test.snap.alloc.lat.seconds");

  // Warm-up: the first sample sizes the ring and the quantile scratch.
  series.tick(0.0);

  const std::uint64_t before = allocation_count();
  for (int t = 1; t <= 100; ++t) {
    hist.record(1e-4);  // keep the quantile path non-trivial
    series.tick(static_cast<double>(t));
  }
  EXPECT_EQ(allocation_count(), before);
  EXPECT_EQ(series.total_samples(), 101u);
}

TEST(ObsSnapshot, WrappedRingStaysAllocationFree) {
  obs::Registry::instance().counter("test.snap.wrap.events").add(1);
  obs::SnapshotSeries series({.capacity = 4, .every = 1});
  series.add_counter("test.snap.wrap.events");
  series.tick(0.0);  // warm-up

  const std::uint64_t before = allocation_count();
  for (int t = 1; t <= 50; ++t) series.tick(static_cast<double>(t));
  EXPECT_EQ(allocation_count(), before);
  EXPECT_EQ(series.dropped(), 47u);
}

}  // namespace
