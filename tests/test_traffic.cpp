// Traffic models: occupancy profiles, burst processes, spectrum surveys.

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "traffic/burst_process.hpp"
#include "traffic/occupancy_model.hpp"
#include "traffic/spectrum_survey.hpp"

namespace {

using namespace lscatter;
using namespace lscatter::traffic;

TEST(OccupancyModel, LteIsAlwaysFull) {
  const OccupancyModel lte(Technology::kLte, Site::kMall);
  dsp::Rng rng(1);
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(lte.mean_occupancy(h), 1.0);
    EXPECT_DOUBLE_EQ(lte.sample_occupancy(h, rng), 1.0);
  }
}

TEST(OccupancyModel, LoraIsSparseEverywhere) {
  for (const Site s : {Site::kHome, Site::kOffice, Site::kClassroom}) {
    const OccupancyModel lora(Technology::kLora, s);
    for (std::size_t h = 0; h < 24; ++h) {
      EXPECT_NEAR(lora.mean_occupancy(h), 0.02, 1e-9);
    }
  }
}

TEST(OccupancyModel, WifiHomePeaksInTheEvening) {
  const OccupancyModel wifi(Technology::kWifi, Site::kHome);
  EXPECT_GT(wifi.mean_occupancy(19), wifi.mean_occupancy(3) * 4);
  EXPECT_GT(wifi.mean_occupancy(19), wifi.mean_occupancy(10));
}

TEST(OccupancyModel, OfficePeaksDuringWorkHours) {
  const OccupancyModel wifi(Technology::kWifi, Site::kOffice);
  EXPECT_GT(wifi.mean_occupancy(11), wifi.mean_occupancy(22) * 3);
}

TEST(OccupancyModel, SamplesAreClampedToUnitInterval) {
  const OccupancyModel wifi(Technology::kWifi, Site::kOffice);
  dsp::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double v = wifi.sample_occupancy(i % 24, rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(OccupancyModel, WeekHas168Samples) {
  const OccupancyModel wifi(Technology::kWifi, Site::kHome);
  dsp::Rng rng(3);
  EXPECT_EQ(wifi.week_of_samples(rng).size(), 168u);
}

TEST(BurstProcess, DutyCycleMatchesTarget) {
  dsp::Rng rng(4);
  BurstProcessConfig cfg;
  cfg.occupancy = 0.4;
  cfg.mean_burst_s = 2e-3;
  const auto bursts = generate_bursts(cfg, 20.0, rng);
  EXPECT_NEAR(measure_occupancy(bursts, 20.0), 0.4, 0.04);
}

TEST(BurstProcess, ZeroAndFullOccupancyEdgeCases) {
  dsp::Rng rng(5);
  BurstProcessConfig cfg;
  cfg.occupancy = 0.0;
  EXPECT_TRUE(generate_bursts(cfg, 1.0, rng).empty());
  cfg.occupancy = 1.0;
  const auto full = generate_bursts(cfg, 1.0, rng);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_NEAR(measure_occupancy(full, 1.0), 1.0, 1e-9);
}

TEST(BurstProcess, IsBusyAgreesWithIntervals) {
  dsp::Rng rng(6);
  BurstProcessConfig cfg;
  cfg.occupancy = 0.3;
  const auto bursts = generate_bursts(cfg, 5.0, rng);
  ASSERT_FALSE(bursts.empty());
  const auto& b = bursts[bursts.size() / 2];
  EXPECT_TRUE(is_busy(bursts, b.start_s + b.duration_s / 2));
  EXPECT_FALSE(is_busy(bursts, b.start_s - 1e-6));
}

TEST(SpectrumSurvey, LteIsContinuousWifiIsNot) {
  dsp::Rng rng(7);
  const auto wifi = survey_wifi(50e-3, 0.4, rng);
  const auto lte = survey_lte(50e-3, rng);
  EXPECT_NEAR(lte.time_occupancy(), 1.0, 1e-9);
  EXPECT_LT(wifi.time_occupancy(), 0.75);
  EXPECT_GT(wifi.time_occupancy(), 0.1);
}

TEST(SpectrumSurvey, RenderProducesRows) {
  dsp::Rng rng(8);
  const auto lte = survey_lte(5e-3, rng);
  const std::string art = lte.render(8);
  EXPECT_GT(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(SpectrumSurvey, WeeklyCdfOrdersTechnologies) {
  dsp::Rng rng(9);
  const auto lte = weekly_occupancy_cdf(Technology::kLte, Site::kHome, rng);
  const auto wifi =
      weekly_occupancy_cdf(Technology::kWifi, Site::kHome, rng);
  const auto lora =
      weekly_occupancy_cdf(Technology::kLora, Site::kHome, rng);
  EXPECT_NEAR(lte.quantile(0.5), 1.0, 1e-9);
  EXPECT_LT(wifi.quantile(0.5), 0.7);
  EXPECT_LT(lora.quantile(0.9), 0.1);
}

}  // namespace
