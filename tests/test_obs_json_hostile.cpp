// Hostile input for the obs JSON parser: every malformed document must
// come back as nullopt — never a crash, hang, or silently wrong value.
// These inputs double as the fuzz seed corpus (fuzz/corpus/obs_json/).

#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"

namespace {

using lscatter::obs::json::parse;
using lscatter::obs::json::Value;

TEST(JsonHostile, TruncatedDocuments) {
  // Every proper prefix of a valid document must be rejected (the empty
  // prefix included).
  const std::string doc = R"({"counters":{"a":1},"arr":[1,2.5,-3e2,true]})";
  for (std::size_t n = 0; n < doc.size(); ++n) {
    EXPECT_FALSE(parse(doc.substr(0, n)).has_value())
        << "prefix of length " << n << " parsed: " << doc.substr(0, n);
  }
  EXPECT_TRUE(parse(doc).has_value());
}

TEST(JsonHostile, TruncatedTokens) {
  EXPECT_FALSE(parse("tru").has_value());
  EXPECT_FALSE(parse("fals").has_value());
  EXPECT_FALSE(parse("nul").has_value());
  EXPECT_FALSE(parse("\"unterminated").has_value());
  EXPECT_FALSE(parse("\"trailing backslash\\").has_value());
  EXPECT_FALSE(parse("1e").has_value());
  EXPECT_FALSE(parse("-").has_value());
  EXPECT_FALSE(parse("[1,").has_value());
  EXPECT_FALSE(parse("{\"k\":").has_value());
}

TEST(JsonHostile, DuplicateKeysDoNotCorruptTheObject) {
  // RFC 8259 leaves duplicate-key behaviour open; ours must stay
  // internally consistent: one entry per key, last value wins, and the
  // key appears once in the order list.
  const auto v = parse(R"({"k":1,"k":2,"j":3,"k":4})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const auto& obj = v->as_object();
  EXPECT_EQ(obj.size(), 2u);
  std::size_t k_count = 0;
  for (const auto& key : obj.keys()) {
    if (key == "k") ++k_count;
  }
  EXPECT_EQ(k_count, 1u);
  ASSERT_NE(obj.find("k"), nullptr);
  EXPECT_EQ(obj.find("k")->as_number(), 4.0);
  ASSERT_NE(obj.find("j"), nullptr);
  EXPECT_EQ(obj.find("j")->as_number(), 3.0);
}

TEST(JsonHostile, NonUtf8AndControlBytes) {
  // Raw control characters inside strings are forbidden by RFC 8259.
  EXPECT_FALSE(parse("\"a\x01z\"").has_value());
  EXPECT_FALSE(parse("\"tab\tno\"").has_value());
  // Stray high bytes outside any string are not valid JSON syntax.
  EXPECT_FALSE(parse("\xff\xfe").has_value());
  EXPECT_FALSE(parse("[\xc3]").has_value());
  // An embedded NUL terminates nothing — string_view carries the length.
  const std::string nul_doc{"[1,\x00 2]", 7};
  EXPECT_FALSE(parse(nul_doc).has_value());
}

TEST(JsonHostile, MalformedNumbers) {
  EXPECT_FALSE(parse("01").has_value());
  EXPECT_FALSE(parse("+1").has_value());
  EXPECT_FALSE(parse(".5").has_value());
  EXPECT_FALSE(parse("1.").has_value());
  EXPECT_FALSE(parse("0x10").has_value());
  EXPECT_FALSE(parse("NaN").has_value());
  EXPECT_FALSE(parse("Infinity").has_value());
}

TEST(JsonHostile, StructuralGarbage) {
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("   ").has_value());
  EXPECT_FALSE(parse("[1,2]]").has_value());
  EXPECT_FALSE(parse("[1 2]").has_value());
  EXPECT_FALSE(parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(parse("{a:1}").has_value());
  EXPECT_FALSE(parse("{'a':1}").has_value());
  EXPECT_FALSE(parse("[,]").has_value());
  EXPECT_FALSE(parse("[1,]").has_value());
  EXPECT_FALSE(parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(parse("1 2").has_value());
}

TEST(JsonHostile, DeepNestingDoesNotOverflowTheStack) {
  // A recursive-descent parser must bound its depth (or at least survive
  // a few thousand levels within the default stack).
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += '[';
  for (int i = 0; i < 2000; ++i) deep += ']';
  const auto ok = parse(deep);
  // Either parsed or rejected — the requirement is "no crash".
  if (ok.has_value()) {
    EXPECT_TRUE(ok->is_array());
  }
  std::string unbalanced(4000, '[');
  EXPECT_FALSE(parse(unbalanced).has_value());
}

TEST(JsonHostile, BadEscapes) {
  EXPECT_FALSE(parse("\"\\q\"").has_value());
  EXPECT_FALSE(parse("\"\\u12\"").has_value());
  EXPECT_FALSE(parse("\"\\uZZZZ\"").has_value());
  const auto ok = parse(R"("\u0041\n\"\\")");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->as_string(), "A\n\"\\");
}

}  // namespace
