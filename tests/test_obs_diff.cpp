// Report diffing (obs/diff.hpp): the three verdict classes the bench
// gate relies on — clean, metric-name drift, and quantile regression —
// plus the noise floor, threshold tuning, smoke mode, and the
// machine-readable verdict JSON.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/registry.hpp"

namespace {

using namespace lscatter;

// A minimal but schema-complete report. `p50` scales all three
// quantiles so ratio tests can dial in a regression with one knob.
obs::json::Value make_report(const std::string& hist_name, double p50,
                             double packets = 100.0) {
  obs::json::Value r;
  r["schema"] = "lscatter.obs/1";
  r["report"] = "unit";
  r["counters"]["test.diff.packets"] = packets;
  r["gauges"]["test.diff.hwm"] = 42.0;
  obs::json::Value& h = r["histograms"][hist_name];
  h["count"] = 1000.0;
  h["mean"] = p50;
  h["p50"] = p50;
  h["p90"] = p50 * 2.0;
  h["p99"] = p50 * 3.0;
  return r;
}

TEST(ObsDiff, IdenticalReportsAreClean) {
  const auto base = make_report("test.diff.demod.seconds", 1e-4);
  const auto cur = make_report("test.diff.demod.seconds", 1e-4);
  const obs::DiffResult d = obs::diff_reports(base, cur);
  EXPECT_TRUE(d.ok());
  EXPECT_FALSE(d.has_drift());
  EXPECT_FALSE(d.has_regression());
  EXPECT_TRUE(d.findings.empty());
}

TEST(ObsDiff, RenamedMetricIsDrift) {
  const auto base = make_report("test.diff.demod.seconds", 1e-4);
  const auto cur = make_report("test.diff.demodulate.seconds", 1e-4);
  const obs::DiffResult d = obs::diff_reports(base, cur);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_drift());
  EXPECT_FALSE(d.has_regression());

  bool removed = false, added = false;
  for (const auto& f : d.findings) {
    if (f.kind == "metric_removed" &&
        f.name == "test.diff.demod.seconds") {
      removed = true;
    }
    if (f.kind == "metric_added" &&
        f.name == "test.diff.demodulate.seconds") {
      added = true;
    }
  }
  EXPECT_TRUE(removed);
  EXPECT_TRUE(added);
  // Drift fails even in smoke mode (quantile comparison off).
  obs::DiffOptions smoke;
  smoke.compare_quantiles = false;
  EXPECT_FALSE(obs::diff_reports(base, cur, smoke).ok());
}

TEST(ObsDiff, P50RegressionPastThresholdFails) {
  const auto base = make_report("test.diff.demod.seconds", 1e-4);
  const auto cur = make_report("test.diff.demod.seconds", 2e-4);  // 2.00x
  const obs::DiffResult d = obs::diff_reports(base, cur);  // default 25%
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_regression());
  EXPECT_FALSE(d.has_drift());
  // All three quantiles scaled 2.00x, but only the median exceeds its
  // threshold — p90/p99 sit inside the looser 2.5x tail allowance.
  int regressions = 0;
  for (const auto& f : d.findings) {
    if (f.kind == "quantile_regression") {
      ++regressions;
      EXPECT_EQ(f.name, "test.diff.demod.seconds.p50");
      EXPECT_DOUBLE_EQ(f.current / f.base, 2.0);
    }
  }
  EXPECT_EQ(regressions, 1);

  // A generous threshold lets the same pair pass...
  obs::DiffOptions loose;
  loose.regression_threshold = 1.5;  // allow up to 2.5x
  EXPECT_TRUE(obs::diff_reports(base, cur, loose).ok());
  // ...as does smoke mode, which never looks at timings.
  obs::DiffOptions smoke;
  smoke.compare_quantiles = false;
  EXPECT_TRUE(obs::diff_reports(base, cur, smoke).ok());
}

TEST(ObsDiff, TailBlowupPastTailThresholdFails) {
  const auto base = make_report("test.diff.demod.seconds", 1e-4);
  auto cur = make_report("test.diff.demod.seconds", 1e-4);  // p50 stable
  cur["histograms"]["test.diff.demod.seconds"]["p99"] = 1e-3;  // 3.33x
  const obs::DiffResult d = obs::diff_reports(base, cur);
  EXPECT_FALSE(d.ok());
  ASSERT_EQ(d.findings.size(), 1u);
  EXPECT_EQ(d.findings[0].kind, "quantile_regression");
  EXPECT_EQ(d.findings[0].name, "test.diff.demod.seconds.p99");

  obs::DiffOptions loose;
  loose.tail_regression_threshold = 4.0;
  EXPECT_TRUE(obs::diff_reports(base, cur, loose).ok());
}

TEST(ObsDiff, ImprovementIsInfoNotFailure) {
  const auto base = make_report("test.diff.demod.seconds", 1e-4);
  const auto cur = make_report("test.diff.demod.seconds", 0.4e-4);
  const obs::DiffResult d = obs::diff_reports(base, cur);
  EXPECT_TRUE(d.ok());
  bool improvement = false;
  for (const auto& f : d.findings) {
    if (f.kind == "quantile_improvement") improvement = true;
  }
  EXPECT_TRUE(improvement);
}

TEST(ObsDiff, NoiseFloorSkipsTinyQuantiles) {
  // 300 ns -> 1.2 µs is a 4x "regression" whose base quantiles (p99 =
  // 3x p50 = 900 ns) all sit below the 1 µs noise floor: must not
  // fail the gate.
  const auto base = make_report("test.diff.tiny.seconds", 3e-7);
  const auto cur = make_report("test.diff.tiny.seconds", 1.2e-6);
  EXPECT_TRUE(obs::diff_reports(base, cur).ok());
}

TEST(ObsDiff, CounterDeltaIsInfo) {
  const auto base = make_report("test.diff.h.seconds", 1e-4, 100.0);
  const auto cur = make_report("test.diff.h.seconds", 1e-4, 150.0);
  const obs::DiffResult d = obs::diff_reports(base, cur);
  EXPECT_TRUE(d.ok());
  ASSERT_EQ(d.findings.size(), 1u);
  EXPECT_EQ(d.findings[0].kind, "counter_delta");
  EXPECT_DOUBLE_EQ(d.findings[0].base, 100.0);
  EXPECT_DOUBLE_EQ(d.findings[0].current, 150.0);
}

TEST(ObsDiff, ForeignSchemaIsDrift) {
  const auto good = make_report("test.diff.h.seconds", 1e-4);
  obs::json::Value bad;
  bad["schema"] = "someone-else/9";
  const obs::DiffResult d = obs::diff_reports(good, bad);
  EXPECT_FALSE(d.ok());
  ASSERT_EQ(d.findings.size(), 1u);
  EXPECT_EQ(d.findings[0].kind, "schema_mismatch");

  obs::json::Value empty;  // not even an object
  EXPECT_FALSE(obs::diff_reports(good, empty).ok());
}

TEST(ObsDiff, ObsOffReportsWithEmptySectionsDiffClean) {
  // -DLSCATTER_OBS=OFF binaries still write reports; both sides empty
  // must compare clean, one side empty must read as drift.
  obs::json::Value off_a;
  off_a["schema"] = "lscatter.obs/1";
  off_a["report"] = "off";
  obs::json::Value off_b = off_a;
  EXPECT_TRUE(obs::diff_reports(off_a, off_b).ok());

  const auto full = make_report("test.diff.h.seconds", 1e-4);
  const obs::DiffResult d = obs::diff_reports(full, off_a);
  EXPECT_TRUE(d.has_drift());
}

TEST(ObsDiff, VerdictJsonAndTextRoundTrip) {
  const auto base = make_report("test.diff.demod.seconds", 1e-4);
  const auto cur = make_report("test.diff.demodulate.seconds", 1e-4);
  const obs::DiffResult d = obs::diff_reports(base, cur);

  const auto parsed = obs::json::parse(d.to_json().dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->find("ok")->as_bool());
  EXPECT_TRUE(parsed->find("drift")->as_bool());
  EXPECT_FALSE(parsed->find("regression")->as_bool());
  EXPECT_EQ(parsed->find("findings")->as_array().size(),
            d.findings.size());

  const std::string text = d.format_text();
  EXPECT_NE(text.find("[drift]"), std::string::npos);
  EXPECT_NE(text.find("verdict: FAIL"), std::string::npos);
}

TEST(ObsDiff, EmptyVsEmptyIsClean) {
  // Two reports with empty metric sections (not just missing ones).
  obs::json::Value a;
  a["schema"] = "lscatter.obs/1";
  a["report"] = "empty";
  a["counters"].make_object();
  a["gauges"].make_object();
  a["histograms"].make_object();
  const obs::json::Value b = a;
  const obs::DiffResult d = obs::diff_reports(a, b);
  EXPECT_TRUE(d.ok());
  EXPECT_TRUE(d.findings.empty());
}

TEST(ObsDiff, ZeroCountHistogramsCompareClean) {
  // A histogram that never recorded (count 0, all quantiles 0) must not
  // produce regression findings in either direction: base quantile 0 is
  // below the noise floor, so the comparison is skipped.
  auto zero = make_report("test.diff.idle.seconds", 0.0);
  zero["histograms"]["test.diff.idle.seconds"]["count"] = 0.0;
  EXPECT_TRUE(obs::diff_reports(zero, zero).ok());

  // Zero base, live current: still clean — you can't compute growth
  // against nothing. The count delta is visible to humans via trend,
  // not a gate failure.
  const auto live = make_report("test.diff.idle.seconds", 1e-3);
  EXPECT_TRUE(obs::diff_reports(zero, live).ok());
}

TEST(ObsDiff, NonFiniteCurrentQuantileIsRegression) {
  // Policy (locked here, documented in obs/diff.hpp): a NaN or inf
  // current quantile over a comparable finite base is always a
  // regression — NaN must not slip through just because every ratio
  // comparison on it is false.
  const auto base = make_report("test.diff.demod.seconds", 1e-4);
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    auto cur = make_report("test.diff.demod.seconds", 1e-4);
    cur["histograms"]["test.diff.demod.seconds"]["p50"] = bad;
    const obs::DiffResult d = obs::diff_reports(base, cur);
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(d.has_regression());
    bool non_finite = false;
    for (const auto& f : d.findings) {
      if (f.kind == "quantile_non_finite") {
        non_finite = true;
        EXPECT_EQ(f.name, "test.diff.demod.seconds.p50");
      }
    }
    EXPECT_TRUE(non_finite);
  }
}

TEST(ObsDiff, NonFiniteBaseQuantileIsSkipped) {
  // A corrupted baseline must not wedge the gate: non-finite base
  // quantiles are skipped (the fresh run can't be blamed for them).
  auto base = make_report("test.diff.demod.seconds", 1e-4);
  base["histograms"]["test.diff.demod.seconds"]["p50"] =
      std::numeric_limits<double>::quiet_NaN();
  const auto cur = make_report("test.diff.demod.seconds", 5e-4);
  const obs::DiffResult d = obs::diff_reports(base, cur);
  for (const auto& f : d.findings) {
    EXPECT_NE(f.name, "test.diff.demod.seconds.p50") << f.kind;
  }
}

TEST(ObsDiff, InfSurvivesJsonParseAsOverflow) {
  // The strict parser still yields inf for an overflowing literal
  // (strtod semantics), so a registry line edited to 1e999 exercises
  // the same non-finite path end to end.
  const auto parsed = obs::json::parse(
      R"({"schema":"lscatter.obs/1","report":"x","histograms":)"
      R"({"test.diff.demod.seconds":{"count":10,"mean":1e999,)"
      R"("p50":1e999,"p90":1e999,"p99":1e999}}})");
  ASSERT_TRUE(parsed.has_value());
  const auto base = make_report("test.diff.demod.seconds", 1e-4);
  const obs::DiffResult d = obs::diff_reports(base, *parsed);
  EXPECT_TRUE(d.has_regression());
}

TEST(ObsDiff, LiveReportDiffsCleanAgainstItself) {
  // End-to-end against the real exporter: a build_report snapshot diffed
  // against a re-parse of its own serialization is clean (this is the
  // `lscatter-obs diff baseline fresh` happy path on an unmodified tree).
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test.diff.live.packets").add(3);
  reg.histogram("test.diff.live.stage.seconds").record(2e-3);
  const obs::json::Value report = obs::build_report("live");
  const auto reparsed = obs::json::parse(report.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(obs::diff_reports(report, *reparsed).ok());
}

}  // namespace
