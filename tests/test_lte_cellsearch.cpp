// UE cell search: PSS timing, N_ID2/N_ID1 recovery, frame boundary, noise
// and rotation robustness.

#include <gtest/gtest.h>

#include "channel/awgn.hpp"
#include "dsp/rng.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"
#include "lte/signal_map.hpp"
#include "lte/ue_sync.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

cvec ten_subframes(lte::Enodeb& enb) {
  cvec s;
  for (int sf = 0; sf < 10; ++sf) {
    const auto tx = enb.next_subframe();
    s.insert(s.end(), tx.samples.begin(), tx.samples.end());
  }
  return s;
}

class CellSearchPerBandwidth
    : public ::testing::TestWithParam<lte::Bandwidth> {};

TEST_P(CellSearchPerBandwidth, FindsCellAndTiming) {
  lte::Enodeb::Config cfg;
  cfg.cell.bandwidth = GetParam();
  cfg.cell.n_id_1 = 31;
  cfg.cell.n_id_2 = 2;
  cfg.seed = 42;
  lte::Enodeb enb(cfg);
  const cvec s = ten_subframes(enb);

  lte::CellSearcher searcher(cfg.cell);
  const auto result = searcher.search(s);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->n_id_2, 2);
  EXPECT_EQ(result->n_id_1, 31);
  EXPECT_EQ(result->cell_id, cfg.cell.cell_id());

  // PSS useful parts repeat every 5 ms; the searcher may lock on any of
  // them (subframe 0 or 5 of either frame in the buffer), but the timing
  // must land exactly on the 5 ms grid anchored at symbol 6 + CP...
  const std::size_t expected =
      lte::symbol_offset_in_subframe(cfg.cell, lte::kPssSymbolIndex) +
      cfg.cell.cp_samples();
  const std::size_t half_frame = 5 * cfg.cell.samples_per_subframe();
  ASSERT_GE(result->pss_useful_start, expected);
  EXPECT_EQ((result->pss_useful_start - expected) % half_frame, 0u);
  // ...and the SSS disambiguation must recover the true frame boundary
  // (the buffer starts at subframe 0, so frame_start == 0 mod frame).
  EXPECT_EQ(result->frame_start, 0u);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, CellSearchPerBandwidth,
                         ::testing::Values(lte::Bandwidth::kMHz1_4,
                                           lte::Bandwidth::kMHz5,
                                           lte::Bandwidth::kMHz20));

TEST(CellSearch, DetectsSubframe5Pss) {
  lte::Enodeb::Config cfg;
  cfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  cfg.cell.n_id_1 = 7;
  cfg.seed = 4;
  lte::Enodeb enb(cfg);
  // Feed subframes 3..9 only: the first PSS in the buffer is subframe 5's.
  cvec s;
  for (std::size_t sf = 3; sf < 10; ++sf) {
    const auto tx = enb.make_subframe(sf);
    s.insert(s.end(), tx.samples.begin(), tx.samples.end());
  }
  lte::CellSearcher searcher(cfg.cell);
  const auto result = searcher.search(s);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found_in_subframe5);
  EXPECT_EQ(result->n_id_1, 7);
}

TEST(CellSearch, SurvivesNoiseAndRotation) {
  lte::Enodeb::Config cfg;
  cfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  cfg.cell.n_id_1 = 99;
  cfg.cell.n_id_2 = 1;
  cfg.seed = 5;
  lte::Enodeb enb(cfg);
  cvec s = ten_subframes(enb);
  const cf32 h{-0.7f, 0.7f};
  for (auto& v : s) v *= h;
  dsp::Rng noise(6);
  channel::add_awgn_snr(s, dsp::Db{5.0}, noise);

  lte::CellSearcher searcher(cfg.cell);
  const auto result = searcher.search(s);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cell_id, cfg.cell.cell_id());
}

TEST(CellSearch, ReturnsNulloptOnPureNoise) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz5;
  dsp::Rng rng(7);
  cvec noise(cell.samples_per_subframe() * 6);
  for (auto& v : noise) v = rng.complex_normal();
  lte::CellSearcher searcher(cell);
  EXPECT_FALSE(searcher.search(noise, 0.5f).has_value());
}

TEST(CellSearch, ReplicaIsUnitPower) {
  lte::CellConfig cell;
  cell.bandwidth = lte::Bandwidth::kMHz10;
  lte::CellSearcher searcher(cell);
  for (std::uint8_t id2 = 0; id2 < 3; ++id2) {
    EXPECT_NEAR(dsp::mean_power(searcher.pss_replica(id2)), 1.0, 1e-3);
  }
}

}  // namespace
