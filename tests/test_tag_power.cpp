// Power model (§4.8) and the energy-harvesting extension.

#include <gtest/gtest.h>

#include "tag/power_model.hpp"

namespace {

using namespace lscatter;
using tag::ClockSource;
using tag::PowerModel;

TEST(PowerModel, PaperAnchorsReproduce) {
  const PowerModel m;
  const auto p20 =
      m.breakdown(lte::Bandwidth::kMHz20, ClockSource::kCrystal);
  EXPECT_DOUBLE_EQ(p20.sync_comparator_uw, 10.0);   // MAX931
  EXPECT_DOUBLE_EQ(p20.rf_switch_uw, 57.0);         // ADG902 @ 20 MHz
  EXPECT_DOUBLE_EQ(p20.baseband_fpga_uw, 82.0);     // AGLN250
  EXPECT_NEAR(p20.clock_uw, 4500.0, 1.0);           // CSX-252F

  const auto p14 =
      m.breakdown(lte::Bandwidth::kMHz1_4, ClockSource::kCrystal);
  EXPECT_NEAR(p14.clock_uw, 588.0, 1.0);            // LTC6990
}

TEST(PowerModel, SwitchPowerLinearInBandwidth) {
  const PowerModel m;
  const auto p5 = m.breakdown(lte::Bandwidth::kMHz5, ClockSource::kCrystal);
  EXPECT_NEAR(p5.rf_switch_uw, 57.0 * 5.0 / 20.0, 1e-9);
}

TEST(PowerModel, ClockRateEqualsSampleRate) {
  const PowerModel m;
  EXPECT_NEAR(m.clock_rate_hz(lte::Bandwidth::kMHz20), 30.72e6, 1.0);
  EXPECT_NEAR(m.clock_rate_hz(lte::Bandwidth::kMHz1_4), 1.92e6, 1.0);
}

TEST(PowerModel, RingOscillatorIsMicrowatts) {
  const PowerModel m;
  const auto p =
      m.breakdown(lte::Bandwidth::kMHz20, ClockSource::kRingOscillator);
  EXPECT_LT(p.clock_uw, 10.0);
  EXPECT_LT(p.total_uw(), 200.0);
  // Crystal totals are dominated by the oscillator instead.
  EXPECT_GT(m.breakdown(lte::Bandwidth::kMHz20, ClockSource::kCrystal)
                .total_uw(),
            4000.0);
}

TEST(Harvest, SensitivityKneeAndEfficiency) {
  const tag::HarvestModel h;
  EXPECT_DOUBLE_EQ(h.harvested_uw(-30.0), 0.0);  // below the knee
  // 0 dBm = 1 mW -> 300 uW at 30%.
  EXPECT_NEAR(h.harvested_uw(0.0), 300.0, 1e-6);
}

TEST(Harvest, DutyCycleCapsAtOne) {
  const tag::HarvestModel h;
  const PowerModel m;
  const auto p =
      m.breakdown(lte::Bandwidth::kMHz20, ClockSource::kRingOscillator);
  EXPECT_DOUBLE_EQ(h.sustainable_duty_cycle(10.0, p), 1.0);
  EXPECT_DOUBLE_EQ(h.sustainable_duty_cycle(-40.0, p), 0.0);
  const double mid = h.sustainable_duty_cycle(-15.0, p);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(PowerModel, FormatRowIsInformative) {
  const PowerModel m;
  const auto p =
      m.breakdown(lte::Bandwidth::kMHz5, ClockSource::kCrystal);
  const std::string row =
      tag::format_power_row(lte::Bandwidth::kMHz5, ClockSource::kCrystal, p);
  EXPECT_NE(row.find("5MHz"), std::string::npos);
  EXPECT_NE(row.find("total"), std::string::npos);
}

}  // namespace
