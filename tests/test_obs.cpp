// Observability subsystem: metric semantics, span nesting, and JSON
// report round-trips. These tests share the process-wide registry with
// everything else linked into the binary, so they use distinct
// `test.obs.*` metric names and reset state where needed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <thread>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"

namespace {

using namespace lscatter;

TEST(ObsRegistry, CounterAccumulatesAndResets) {
  obs::Counter& c = obs::Registry::instance().counter("test.obs.counter");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, RegistryReturnsStableReferences) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("test.obs.stable");
  obs::Counter& b = reg.counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.find_counter("test.obs.stable"), &a);
  EXPECT_EQ(reg.find_counter("test.obs.never_registered"), nullptr);
}

TEST(ObsRegistry, GaugeSetAndHighWaterMark) {
  obs::Gauge& g = obs::Registry::instance().gauge("test.obs.gauge");
  g.reset();
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.update_max(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.update_max(7.25);  // higher: taken
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
  g.set(1.0);  // plain set always wins
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(ObsRegistry, HistogramStatsAndQuantiles) {
  obs::Histogram& h =
      obs::Registry::instance().histogram("test.obs.hist");
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);

  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 1e-6);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), 500.5e-3, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 1e-3);

  // Log-bucketed quantiles are approximate: within a bucket width
  // (factor 10^(1/8) ~ 1.33x) of the exact order statistic.
  EXPECT_NEAR(h.quantile(0.5), 500e-6, 500e-6 * 0.35);
  EXPECT_NEAR(h.quantile(0.99), 990e-6, 990e-6 * 0.35);
  // Endpoints are exact (clamped to the observed extrema).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e-3);
}

TEST(ObsRegistry, HistogramUnderflowAndReset) {
  obs::Histogram& h =
      obs::Registry::instance().histogram("test.obs.hist_uf");
  h.reset();
  h.record(0.0);
  h.record(-1.0);
  h.record(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(ObsRegistry, CountersAreThreadSafe) {
  obs::Counter& c = obs::Registry::instance().counter("test.obs.mt");
  c.reset();
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsSpan, NestingDepthAndParenting) {
  obs::SpanSink::instance().clear();
  {
    obs::ScopedSpan outer("test.obs.outer");
    EXPECT_EQ(obs::ScopedSpan::current_depth(), 1u);
    {
      obs::ScopedSpan inner("test.obs.inner");
      EXPECT_EQ(obs::ScopedSpan::current_depth(), 2u);
    }
    EXPECT_EQ(obs::ScopedSpan::current_depth(), 1u);
  }
  EXPECT_EQ(obs::ScopedSpan::current_depth(), 0u);

  const auto events = obs::SpanSink::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; events land in finish order.
  const obs::SpanEvent& inner = events[0];
  const obs::SpanEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test.obs.inner");
  EXPECT_STREQ(outer.name, "test.obs.outer");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent_seq, outer.seq);
  EXPECT_EQ(outer.parent_seq, obs::SpanEvent::kNoParent);
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
}

TEST(ObsSpan, RingBufferDropsOldestAndCounts) {
  // total/dropped are cumulative process counters; assert on deltas.
  obs::SpanSink& sink = obs::SpanSink::instance();
  sink.set_capacity(4);
  const std::uint64_t total0 = sink.total_recorded();
  const std::uint64_t dropped0 = sink.dropped();
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan s("test.obs.ring");
  }
  EXPECT_EQ(sink.snapshot().size(), 4u);
  EXPECT_EQ(sink.total_recorded() - total0, 10u);
  EXPECT_EQ(sink.dropped() - dropped0, 6u);
  sink.set_capacity(obs::SpanSink::kDefaultCapacity);
}

TEST(ObsSpan, MacroFeedsLatencyHistogram) {
  obs::Registry& reg = obs::Registry::instance();
  reg.histogram("test.obs.macro_span.seconds").reset();
  for (int i = 0; i < 3; ++i) {
    LSCATTER_OBS_SPAN("test.obs.macro_span");
  }
  const obs::Histogram* h =
      reg.find_histogram("test.obs.macro_span.seconds");
#if LSCATTER_OBS_ENABLED
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_GE(h->min(), 0.0);
#else
  (void)h;
#endif
}

TEST(ObsJson, ValueDumpAndParseRoundTrip) {
  obs::json::Value v;
  v["string"] = "a \"quoted\"\nline\t\\";
  v["number"] = 1.5;
  v["int"] = std::uint64_t{12345678901234ull};
  v["flag"] = true;
  v["nothing"] = nullptr;
  obs::json::Array arr;
  arr.emplace_back(1);
  arr.emplace_back("two");
  v["list"] = std::move(arr);
  v["nested"]["deep"] = 0.125;

  for (const int indent : {-1, 0, 2}) {
    const std::string text = v.dump(indent);
    const auto parsed = obs::json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->find("string")->as_string(),
              "a \"quoted\"\nline\t\\");
    EXPECT_DOUBLE_EQ(parsed->find("number")->as_number(), 1.5);
    EXPECT_DOUBLE_EQ(parsed->find("int")->as_number(), 12345678901234.0);
    EXPECT_TRUE(parsed->find("flag")->as_bool());
    EXPECT_EQ(parsed->find("nothing")->kind(),
              obs::json::Value::Kind::kNull);
    EXPECT_EQ(parsed->find("list")->as_array().size(), 2u);
    EXPECT_DOUBLE_EQ(parsed->find("nested")->find("deep")->as_number(),
                     0.125);
  }

  // Objects keep insertion order through dump.
  const std::string text = v.dump(-1);
  EXPECT_LT(text.find("string"), text.find("number"));
  EXPECT_LT(text.find("number"), text.find("nested"));
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::json::parse("").has_value());
  EXPECT_FALSE(obs::json::parse("{").has_value());
  EXPECT_FALSE(obs::json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(obs::json::parse("[1,]").has_value());
  EXPECT_FALSE(obs::json::parse("\"unterminated").has_value());
  EXPECT_FALSE(obs::json::parse("{} trailing").has_value());
  EXPECT_FALSE(obs::json::parse("nul").has_value());
}

TEST(ObsReport, JsonReportRoundTripsThroughParser) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test.obs.report.counter").reset();
  reg.counter("test.obs.report.counter").add(7);
  reg.gauge("test.obs.report.gauge").set(2.5);
  obs::Histogram& h = reg.histogram("test.obs.report.hist");
  h.reset();
  for (int i = 0; i < 100; ++i) h.record(1e-3);

  obs::json::Value extra;
  extra["run"] = "unit-test";
  const obs::json::Value report =
      obs::build_report("round-trip", {}, &extra);

  const auto parsed = obs::json::parse(report.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema")->as_string(), "lscatter.obs/1");
  EXPECT_EQ(parsed->find("report")->as_string(), "round-trip");
  EXPECT_DOUBLE_EQ(
      parsed->find("counters")->find("test.obs.report.counter")
          ->as_number(),
      7.0);
  EXPECT_DOUBLE_EQ(
      parsed->find("gauges")->find("test.obs.report.gauge")->as_number(),
      2.5);
  const obs::json::Value* hist =
      parsed->find("histograms")->find("test.obs.report.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 100.0);
  EXPECT_NEAR(hist->find("mean")->as_number(), 1e-3, 1e-12);
  EXPECT_NEAR(hist->find("p50")->as_number(), 1e-3, 1e-3);
  ASSERT_NE(hist->find("buckets"), nullptr);
  EXPECT_GE(hist->find("buckets")->as_array().size(), 1u);
  EXPECT_EQ(parsed->find("extra")->find("run")->as_string(), "unit-test");

  // The text exporter mentions the same metrics.
  const std::string text = obs::format_text_report("round-trip");
  EXPECT_NE(text.find("test.obs.report.counter"), std::string::npos);
  EXPECT_NE(text.find("test.obs.report.hist"), std::string::npos);
}

TEST(ObsReport, WriteFromEnvFailsSoftlyOnUnwritablePath) {
  // The writer creates missing parent directories, so "unwritable" must
  // route through a non-directory: /dev/null can never become a parent.
  ASSERT_EQ(setenv("LSCATTER_OBS_JSON",
                   "/dev/null/lscatter/report.json", 1),
            0);
  const auto path = obs::write_report_from_env("env-fail");
  unsetenv("LSCATTER_OBS_JSON");
  EXPECT_FALSE(path.has_value());  // and no crash/throw getting here
}

TEST(ObsReport, WriteFromEnvNoDestinationIsNullopt) {
  unsetenv("LSCATTER_OBS_JSON");
  EXPECT_FALSE(obs::write_report_from_env("env-none").has_value());
}

TEST(ObsReport, ReportOptionsFromEnvShrinkBaselines) {
  // Defaults when unset.
  unsetenv("LSCATTER_OBS_SPANS");
  unsetenv("LSCATTER_OBS_BUCKETS");
  obs::ReportOptions options = obs::report_options_from_env();
  EXPECT_EQ(options.max_span_events, obs::ReportOptions{}.max_span_events);
  EXPECT_TRUE(options.include_buckets);

  // The bench_baseline.sh configuration: no spans, no buckets.
  ASSERT_EQ(setenv("LSCATTER_OBS_SPANS", "0", 1), 0);
  ASSERT_EQ(setenv("LSCATTER_OBS_BUCKETS", "0", 1), 0);
  options = obs::report_options_from_env();
  EXPECT_EQ(options.max_span_events, 0u);
  EXPECT_FALSE(options.include_buckets);

  obs::Registry::instance().histogram("test.obs.envopts").record(1e-3);
  {
    obs::ScopedSpan s("test.obs.envopts_span");
  }
  const obs::json::Value report = obs::build_report("shrunk", options);
  EXPECT_EQ(report.find("spans"), nullptr);
  const obs::json::Value* hist =
      report.find("histograms")->find("test.obs.envopts");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("buckets"), nullptr);
  EXPECT_NE(hist->find("p99"), nullptr);

  // Garbage values fall back to defaults / stay permissive.
  ASSERT_EQ(setenv("LSCATTER_OBS_SPANS", "not-a-number", 1), 0);
  EXPECT_EQ(obs::report_options_from_env().max_span_events,
            obs::ReportOptions{}.max_span_events);
  unsetenv("LSCATTER_OBS_SPANS");
  unsetenv("LSCATTER_OBS_BUCKETS");
}

TEST(ObsReport, NumberFormattingRoundTripsExactly) {
  // The writer picks the shortest representation that strtod-round-trips;
  // spot-check values that commonly lose precision.
  for (const double v : {1e-9, 0.1, 1.0 / 3.0, 12345678901234567.0,
                         6.02e23, 5e-324}) {
    obs::json::Value j;
    j["v"] = v;
    const auto parsed = obs::json::parse(j.dump(-1));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("v")->as_number(), v);
  }
}

}  // namespace
