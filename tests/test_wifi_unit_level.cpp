// §6 generalization: basic-timing-unit modulation on WiFi OFDM.

#include <gtest/gtest.h>

#include "baselines/wifi_unit_level.hpp"

namespace {

using namespace lscatter;

baselines::WifiUnitLevelConfig close_range() {
  baselines::WifiUnitLevelConfig cfg;
  cfg.pathloss.exponent = 2.0;
  cfg.enb_tag_ft = 3.0;
  cfg.tag_ue_ft = 3.0;
  return cfg;
}

TEST(WifiUnitLevel, RateIs13Mbps) {
  baselines::WifiUnitLevelLink link(close_range());
  EXPECT_NEAR(link.instantaneous_rate_bps(), 13e6, 1e3);
}

TEST(WifiUnitLevel, CloseRangeBurstDemodulates) {
  baselines::WifiUnitLevelLink link(close_range());
  const auto m = link.run_burst(40);
  EXPECT_EQ(m.packets_detected, 1u);
  EXPECT_EQ(m.bits_sent, 39u * 52u);
  EXPECT_LT(m.ber(), 2e-2);  // OFDM-envelope floor at a ~19 dB budget
}

TEST(WifiUnitLevel, SurvivesTimingError) {
  auto cfg = close_range();
  cfg.timing_error_units = -4;  // within the +-6 unit slack
  baselines::WifiUnitLevelLink link(cfg);
  const auto m = link.run_burst(30);
  EXPECT_EQ(m.packets_detected, 1u);
  EXPECT_LT(m.ber(), 2e-2);
}

TEST(WifiUnitLevel, OccupancyGatingIsTheBottleneck) {
  // The §6 point quantified: unit-level WiFi matches LScatter's
  // instantaneous rate but bursty occupancy caps the average.
  baselines::WifiUnitLevelLink link(close_range());
  const double at_wifi_occupancy = link.hourly_throughput_bps(0.3, 30);
  const double at_lte_occupancy = link.hourly_throughput_bps(1.0, 30);
  EXPECT_NEAR(at_wifi_occupancy / at_lte_occupancy, 0.3, 0.01);
  EXPECT_GT(at_lte_occupancy, 12e6);
}

TEST(WifiUnitLevel, FarLinkDegrades) {
  auto cfg = close_range();
  cfg.pathloss.exponent = 2.8;
  cfg.enb_tag_ft = 10.0;
  cfg.tag_ue_ft = 120.0;
  baselines::WifiUnitLevelLink link(cfg);
  const auto m = link.run_burst(30);
  EXPECT_GT(m.ber(), 0.02);
}

}  // namespace
