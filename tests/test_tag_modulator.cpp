// RF-switch model: sign semantics, timing-error shifts, gain application.

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "tag/modulator.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

TEST(Modulator, OnesPassThroughZerosFlip) {
  const cvec x = {cf32{1, 0}, cf32{0, 1}, cf32{-2, 3}};
  const std::vector<std::uint8_t> pattern = {1, 0, 1};
  const cvec y = tag::apply_pattern(x, pattern, 0, cf32{1.0f, 0.0f});
  EXPECT_EQ(y[0], x[0]);
  EXPECT_EQ(y[1], -x[1]);
  EXPECT_EQ(y[2], x[2]);
}

TEST(Modulator, GainScalesAndRotates) {
  const cvec x = {cf32{1, 0}};
  const std::vector<std::uint8_t> pattern = {1};
  const cf32 g{0.0f, 2.0f};
  const cvec y = tag::apply_pattern(x, pattern, 0, g);
  EXPECT_FLOAT_EQ(y[0].real(), 0.0f);
  EXPECT_FLOAT_EQ(y[0].imag(), 2.0f);
}

TEST(Modulator, PositiveErrorDelaysThePattern) {
  // Tag late by 2 units: output[n] follows pattern[n-2].
  const cvec x(6, cf32{1, 0});
  const std::vector<std::uint8_t> pattern = {0, 1, 1, 1, 1, 1};
  const cvec y = tag::apply_pattern(x, pattern, 2, cf32{1.0f, 0.0f});
  EXPECT_EQ(y[0], x[0]);   // index -2: out of range -> filler '1'
  EXPECT_EQ(y[1], x[1]);   // index -1: filler
  EXPECT_EQ(y[2], -x[2]);  // pattern[0] == 0
  EXPECT_EQ(y[3], x[3]);
}

TEST(Modulator, NegativeErrorAdvancesThePattern) {
  const cvec x(4, cf32{1, 0});
  const std::vector<std::uint8_t> pattern = {1, 1, 1, 0};
  const cvec y = tag::apply_pattern(x, pattern, -3, cf32{1.0f, 0.0f});
  EXPECT_EQ(y[0], -x[0]);  // pattern[3] == 0
  EXPECT_EQ(y[1], x[1]);   // index 4: out of range -> filler
}

TEST(Modulator, EnergyIsPreservedUpToGain) {
  dsp::Rng rng(1);
  cvec x(512);
  for (auto& v : x) v = rng.complex_normal();
  const auto pattern = rng.bits(512);
  const float g = 0.25f;
  const cvec y = tag::apply_pattern(x, pattern, 0, cf32{g, 0.0f});
  EXPECT_NEAR(dsp::energy(y), g * g * dsp::energy(x), 1e-3);
}

TEST(Modulator, FirstHarmonicConstant) {
  EXPECT_NEAR(tag::kSquareWaveFirstHarmonic, 2.0 / 3.14159265, 1e-6);
}

}  // namespace
