// Rate-1/2 K=7 convolutional code + Viterbi: round trips, error
// correction, soft-decision gain, and the FEC-enabled packet codec.

#include <gtest/gtest.h>

#include <cmath>

#include "core/framing.hpp"
#include "dsp/convolutional.hpp"
#include "dsp/rng.hpp"

namespace {

using namespace lscatter;
using namespace lscatter::dsp;

TEST(Conv, SizesAreConsistent) {
  EXPECT_EQ(conv_encoded_bits(100), 212u);
  EXPECT_EQ(conv_info_capacity(212), 100u);
  EXPECT_EQ(conv_info_capacity(213), 100u);
  EXPECT_EQ(conv_info_capacity(12), 0u);
}

class ConvRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvRoundTrip, EncodeDecodeIsIdentity) {
  Rng rng(GetParam());
  const auto info = rng.bits(GetParam());
  const auto coded = conv_encode(info);
  EXPECT_EQ(coded.size(), conv_encoded_bits(info.size()));
  EXPECT_EQ(conv_decode_hard(coded, info.size()), info);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ConvRoundTrip,
                         ::testing::Values(1, 2, 7, 64, 333, 1200));

TEST(Conv, CorrectsScatteredHardErrors) {
  Rng rng(42);
  const auto info = rng.bits(400);
  auto coded = conv_encode(info);
  // Free distance 10: scattered single errors far apart are correctable.
  for (const std::size_t pos : {15u, 150u, 320u, 500u, 700u}) {
    coded[pos] ^= 1;
  }
  EXPECT_EQ(conv_decode_hard(coded, info.size()), info);
}

TEST(Conv, SoftDecisionsBeatHardAtLowSnr) {
  Rng rng(7);
  const std::size_t n = 600;
  const int trials = 20;
  std::size_t hard_errors = 0;
  std::size_t soft_errors = 0;
  for (int t = 0; t < trials; ++t) {
    const auto info = rng.bits(n);
    const auto coded = conv_encode(info);
    // BPSK over AWGN around 1.5 dB Eb/N0.
    std::vector<float> soft(coded.size());
    std::vector<std::uint8_t> hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double s = coded[i] ? 1.0 : -1.0;
      const double y = s + rng.normal() * 0.8;
      soft[i] = static_cast<float>(y);
      hard[i] = y >= 0.0 ? 1 : 0;
    }
    const auto dh = conv_decode_hard(hard, n);
    const auto ds = conv_decode_soft(soft, n);
    for (std::size_t i = 0; i < n; ++i) {
      if (dh[i] != info[i]) ++hard_errors;
      if (ds[i] != info[i]) ++soft_errors;
    }
  }
  EXPECT_LT(soft_errors, hard_errors);
  EXPECT_LT(static_cast<double>(soft_errors) / (n * trials), 1e-2);
}

TEST(Conv, AllZeroAndAllOneInputs) {
  const std::vector<std::uint8_t> zeros(50, 0);
  const std::vector<std::uint8_t> ones(50, 1);
  EXPECT_EQ(conv_decode_hard(conv_encode(zeros), 50), zeros);
  EXPECT_EQ(conv_decode_hard(conv_encode(ones), 50), ones);
}

TEST(PacketCodecFec, ConvRoundTrip) {
  core::PacketCodec codec(1200, core::Fec::kConvolutional);
  // capacity 1200 -> 594 info -> 562 payload.
  EXPECT_EQ(codec.payload_bits(), conv_info_capacity(1200) - 32);
  Rng rng(3);
  const auto payload = rng.bits(codec.payload_bits());
  const auto coded = codec.encode(payload);
  EXPECT_EQ(coded.size(), 1200u);
  const auto decoded = codec.decode(coded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(PacketCodecFec, SoftDecodeFixesFlips) {
  core::PacketCodec codec(800, core::Fec::kConvolutional);
  Rng rng(4);
  const auto payload = rng.bits(codec.payload_bits());
  const auto coded = codec.encode(payload);
  std::vector<float> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    soft[i] = coded[i] ? 1.0f : -1.0f;
  }
  // Flip a handful of on-air units hard; soft decode must repair them.
  for (const std::size_t pos : {10u, 200u, 350u, 600u}) {
    soft[pos] = -soft[pos];
  }
  const auto decoded = codec.decode_soft(soft);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(PacketCodecFec, UncodedSoftPathMatchesHard) {
  core::PacketCodec codec(256, core::Fec::kNone);
  Rng rng(5);
  const auto payload = rng.bits(codec.payload_bits());
  const auto coded = codec.encode(payload);
  std::vector<float> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    soft[i] = coded[i] ? 0.7f : -0.7f;
  }
  const auto decoded = codec.decode_soft(soft);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

}  // namespace
