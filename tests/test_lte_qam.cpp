// QAM mappers: spec levels, unit power, round trips, noisy demapping.

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/rng.hpp"
#include "lte/qam.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using lte::Modulation;

class QamRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(QamRoundTrip, ModulateDemodulateIsIdentity) {
  const Modulation m = GetParam();
  dsp::Rng rng(static_cast<std::uint64_t>(m) + 1);
  const auto bits = rng.bits(600 * lte::bits_per_symbol(m));
  const auto symbols = lte::qam_modulate(bits, m);
  const auto out = lte::qam_demodulate(symbols, m);
  EXPECT_EQ(out, bits);
}

TEST_P(QamRoundTrip, UnitAveragePower) {
  const Modulation m = GetParam();
  dsp::Rng rng(static_cast<std::uint64_t>(m) + 7);
  const auto bits = rng.bits(20000 * lte::bits_per_symbol(m));
  const auto symbols = lte::qam_modulate(bits, m);
  EXPECT_NEAR(dsp::mean_power(symbols), 1.0, 0.02);
}

TEST_P(QamRoundTrip, SurvivesSmallNoise) {
  const Modulation m = GetParam();
  dsp::Rng rng(static_cast<std::uint64_t>(m) + 13);
  const auto bits = rng.bits(1000 * lte::bits_per_symbol(m));
  auto symbols = lte::qam_modulate(bits, m);
  for (auto& s : symbols) s += rng.complex_normal(1e-4);
  EXPECT_EQ(lte::qam_demodulate(symbols, m), bits);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, QamRoundTrip,
                         ::testing::Values(Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Qam, QpskLevels) {
  const std::vector<std::uint8_t> bits = {0, 0, 1, 1};
  const auto s = lte::qam_modulate(bits, Modulation::kQpsk);
  const double a = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(s[0].real(), a, 1e-6);
  EXPECT_NEAR(s[0].imag(), a, 1e-6);
  EXPECT_NEAR(s[1].real(), -a, 1e-6);
  EXPECT_NEAR(s[1].imag(), -a, 1e-6);
}

TEST(Qam, Qam16SpecTableCorners) {
  // TS 36.211 Table 7.1.3-1: b=0000 -> (1+j)/sqrt(10); b=1010 ->
  // (-3-3j)/sqrt(10) [b0 b1 b2 b3 with b2/b3 selecting magnitude 3].
  const double s10 = std::sqrt(10.0);
  const auto a =
      lte::qam_modulate(std::vector<std::uint8_t>{0, 0, 0, 0},
                        Modulation::kQam16);
  EXPECT_NEAR(a[0].real(), 1.0 / s10, 1e-6);
  EXPECT_NEAR(a[0].imag(), 1.0 / s10, 1e-6);
  const auto b =
      lte::qam_modulate(std::vector<std::uint8_t>{1, 1, 1, 1},
                        Modulation::kQam16);
  EXPECT_NEAR(b[0].real(), -3.0 / s10, 1e-6);
  EXPECT_NEAR(b[0].imag(), -3.0 / s10, 1e-6);
}

TEST(Qam, Qam64SpecTableCorners) {
  const double s42 = std::sqrt(42.0);
  const auto a = lte::qam_modulate(
      std::vector<std::uint8_t>{0, 0, 0, 0, 0, 0}, Modulation::kQam64);
  EXPECT_NEAR(a[0].real(), 3.0 / s42, 1e-6);
  const auto b = lte::qam_modulate(
      std::vector<std::uint8_t>{0, 0, 1, 1, 1, 1}, Modulation::kQam64);
  EXPECT_NEAR(b[0].real(), 7.0 / s42, 1e-6);
}

TEST(Qam, BitsPerSymbol) {
  EXPECT_EQ(lte::bits_per_symbol(Modulation::kQpsk), 2u);
  EXPECT_EQ(lte::bits_per_symbol(Modulation::kQam16), 4u);
  EXPECT_EQ(lte::bits_per_symbol(Modulation::kQam64), 6u);
}

TEST(Qam, EvmOfCleanSignalIsZero) {
  dsp::Rng rng(99);
  const auto bits = rng.bits(400);
  const auto s = lte::qam_modulate(bits, Modulation::kQpsk);
  EXPECT_NEAR(lte::evm_rms(s, s), 0.0, 1e-9);
}

TEST(Qam, EvmTracksNoisePower) {
  dsp::Rng rng(100);
  const auto bits = rng.bits(40000);
  const auto ref = lte::qam_modulate(bits, Modulation::kQpsk);
  auto noisy = ref;
  for (auto& v : noisy) v += rng.complex_normal(0.01);
  EXPECT_NEAR(lte::evm_rms(noisy, ref), 0.1, 0.01);  // sqrt(0.01)
}

}  // namespace
