// Cross-module integration: the full-fidelity pipeline where the tag's
// timing comes from the *analog circuit* (not the statistical shortcut),
// plus end-to-end properties that span eNodeB, tag, channel, and UE.

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "core/lscatter_rx.hpp"
#include "core/scenario.hpp"
#include "core/link_simulator.hpp"
#include "lte/enodeb.hpp"
#include "lte/ofdm.hpp"
#include "lte/signal_map.hpp"
#include "lte/transport.hpp"
#include "lte/ue_rx.hpp"
#include "tag/analog_frontend.hpp"
#include "tag/modulator.hpp"
#include "tag/sync_detector.hpp"
#include "tag/tag_controller.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;
using dsp::cvec;

// The full-fidelity chain: eNodeB stream -> analog front end -> sync
// detector -> tag modulation aligned to the *detected* timing -> UE
// demodulation. Validates that the analog circuit's residual error stays
// inside the modulation-offset tolerance and the packet decodes.
TEST(FullFidelity, AnalogSyncDrivesACleanPacket) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz20;
  ecfg.seed = 2020;
  lte::Enodeb enb(ecfg);
  const auto& cell = ecfg.cell;

  // 1) Tag listens to 60 ms of ambient LTE through its analog circuit
  // (the EWMA tracker needs ~10 edges to converge).
  cvec stream;
  std::vector<lte::SubframeTx> subframes;
  for (std::size_t sf = 0; sf < 60; ++sf) {
    subframes.push_back(enb.next_subframe());
    stream.insert(stream.end(), subframes.back().samples.begin(),
                  subframes.back().samples.end());
  }
  dsp::Rng noise(7);
  channel::add_awgn(stream, 1e-3, noise);

  tag::AnalogFrontend frontend({}, cell.sample_rate_hz());
  const auto trace = frontend.process(stream);
  tag::SyncDetector detector({});
  detector.feed_edges(tag::AnalogFrontend::rising_edges(trace));
  ASSERT_TRUE(detector.locked());

  // 2) The tag derives its timing error from the last estimate. True PSS
  // time of the most recent sync subframe:
  const auto est = detector.last_pss_estimate_s();
  ASSERT_TRUE(est.has_value());
  const double sym6 =
      static_cast<double>(
          lte::symbol_offset_in_subframe(cell, lte::kPssSymbolIndex) +
          cell.cp_samples()) /
      cell.sample_rate_hz();
  const double k_pss = std::round((*est - sym6) / 5e-3);
  const double truth_pss = k_pss * 5e-3 + sym6;
  const double residual_s = *est - truth_pss;

  // The analog circuit's residual must fit the +-13.8 us window.
  EXPECT_LT(std::abs(residual_s), 13.8e-6);

  // 3) Modulate a packet on subframe 31 with that residual as the tag's
  // timing error; demodulate at the UE.
  const auto err_units = static_cast<std::ptrdiff_t>(
      std::llround(residual_s * cell.sample_rate_hz()));

  tag::TagScheduleConfig sched;
  tag::TagController ctl(cell, sched);
  core::OffsetSearch search;
  search.range_units = 450;  // cover the full +-13.8 us tolerance
  core::LscatterDemodulator demod(cell, sched, search);

  const auto tx = enb.make_subframe(31);
  const std::size_t cap = ctl.packet_raw_bits(31);
  const core::PacketCodec codec(cap);
  dsp::Rng prng(9);
  const auto payload = prng.bits(codec.payload_bits());
  const auto chunks =
      core::split_bits(codec.encode(payload), ctl.bits_per_symbol());
  const auto plan = ctl.plan_subframe(31, true, chunks);
  const auto pattern = tag::expand_to_units(cell, plan);
  // Noiseless final hop: this test isolates the *timing* chain; noise
  // behaviour is covered by the LinkSimulator tests.
  const auto rx = tag::apply_pattern(tx.samples, pattern, err_units,
                                     cf32{1e-3f, 0.5e-3f});

  const auto res = demod.demodulate_packet(rx, tx.samples, 31);
  ASSERT_TRUE(res.preamble_found);
  EXPECT_EQ(res.offset_units, err_units);
  ASSERT_TRUE(res.payload.has_value());
  EXPECT_EQ(*res.payload, payload);
}

TEST(Integration, PssSssSurviveTagModulationUnmodified) {
  // The tag transmits plain filler ('1' square waves, theta = 0) over
  // PSS/SSS symbols, so the scattered sideband carries them *unmodified*
  // and the original band is untouched — a UE can still cell-search the
  // hybrid signal.
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  ecfg.seed = 11;
  lte::Enodeb enb(ecfg);
  const auto& cell = ecfg.cell;
  tag::TagController ctl(cell, {});

  const auto tx = enb.make_subframe(0);  // sync subframe
  std::vector<std::vector<std::uint8_t>> payloads(
      11, std::vector<std::uint8_t>(cell.n_subcarriers(), 0));
  const auto plan = ctl.plan_subframe(0, true, payloads);
  const auto pattern = tag::expand_to_units(cell, plan);

  // Scattered signal (gain folded to 1 for the check).
  const auto hybrid =
      tag::apply_pattern(tx.samples, pattern, 0, cf32{1.0f, 0.0f});

  // PSS/SSS symbols must be bit-exact copies.
  for (const std::size_t l : {lte::kSssSymbolIndex, lte::kPssSymbolIndex}) {
    const std::size_t start = lte::symbol_offset_in_subframe(cell, l);
    const std::size_t len = cell.cp_length(l % 7) + cell.fft_size();
    for (std::size_t n = start; n < start + len; ++n) {
      ASSERT_EQ(hybrid[n], tx.samples[n]) << "sample " << n;
    }
  }
}

TEST(Integration, TransportSegmentationRoundTrip) {
  for (const std::size_t capacity : {100u, 6144u, 6145u, 50000u, 81600u}) {
    const auto layout = lte::segment(capacity);
    std::size_t coded_total = 0;
    for (const auto& b : layout) {
      coded_total += b.info_bits + lte::kBlockCrcBits;
      EXPECT_LE(b.info_bits + lte::kBlockCrcBits, lte::kMaxCodeBlockBits);
    }
    EXPECT_EQ(coded_total, capacity);

    dsp::Rng rng(capacity);
    const auto info = rng.bits(lte::info_bits(layout));
    const auto coded = lte::encode_blocks(layout, info);
    EXPECT_EQ(coded.size(), capacity);
    const auto dec = lte::decode_blocks(layout, coded);
    EXPECT_TRUE(dec.all_ok());
    EXPECT_EQ(dec.info, info);
    EXPECT_EQ(dec.info_bits_ok, info.size());
  }
}

TEST(Integration, CorruptedBlockOnlyLosesItself) {
  const auto layout = lte::segment(3 * 6144);
  ASSERT_EQ(layout.size(), 3u);
  dsp::Rng rng(3);
  const auto info = rng.bits(lte::info_bits(layout));
  auto coded = lte::encode_blocks(layout, info);
  coded[7000] ^= 1;  // inside block 1
  const auto dec = lte::decode_blocks(layout, coded);
  EXPECT_EQ(dec.blocks_ok, 2u);
  EXPECT_FALSE(dec.all_ok());
  EXPECT_EQ(dec.info_bits_ok, info.size() - layout[1].info_bits);
}

TEST(Integration, RepetitionBuysRangeEndToEnd) {
  // At a marginal mid-range link, r=8 must deliver packets where r=1
  // cannot — the soft-combining diversity claim, verified end-to-end.
  core::ScenarioOptions opt;
  opt.seed = 99;
  core::LinkConfig base = core::make_scenario(core::Scene::kSmartHome, opt);
  base.geometry.enb_tag_ft = 18.0;
  base.geometry.tag_ue_ft = 14.0;
  base.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};

  core::LinkConfig r1 = base;
  r1.schedule.max_data_symbols_per_packet = 1;
  core::LinkConfig r8 = base;
  r8.schedule.max_data_symbols_per_packet = 1;
  r8.schedule.repetition = 8;

  core::LinkMetrics m1;
  core::LinkMetrics m8;
  for (int d = 0; d < 4; ++d) {
    core::LinkConfig c1 = r1;
    c1.seed = r1.seed + d;
    core::LinkConfig c8 = r8;
    c8.seed = r8.seed + d;
    m1 += core::LinkSimulator(c1).run(20);
    m8 += core::LinkSimulator(c8).run(20);
  }
  EXPECT_GT(m8.packet_delivery_ratio(), m1.packet_delivery_ratio());
  EXPECT_GT(m8.packet_delivery_ratio(), 0.8);
  EXPECT_LT(m8.ber(), m1.ber());
}

TEST(Integration, MetricsAccumulateAcrossRuns) {
  core::LinkMetrics a;
  a.bits_sent = 100;
  a.bit_errors = 5;
  a.bits_delivered = 90;
  a.elapsed_s = 1.0;
  a.packets_sent = 2;
  core::LinkMetrics b = a;
  a += b;
  EXPECT_EQ(a.bits_sent, 200u);
  EXPECT_EQ(a.packets_sent, 4u);
  EXPECT_DOUBLE_EQ(a.ber(), 0.05);
  EXPECT_DOUBLE_EQ(a.throughput_bps(), 90.0);
  EXPECT_NE(a.describe().find("BER"), std::string::npos);
}

}  // namespace
