// FFT correctness: round-trip identity, known transforms, Parseval, the
// Bluestein path (K=1536), and fftshift.

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/rng.hpp"

namespace {

using lscatter::dsp::cf32;
using lscatter::dsp::cvec;
using lscatter::dsp::FftPlan;
using lscatter::dsp::Rng;

double max_error(const cvec& a, const cvec& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return m;
}

TEST(Fft, DeltaTransformsToOnes) {
  FftPlan plan(64);
  cvec x(64, cf32{});
  x[0] = cf32{1.0f, 0.0f};
  const cvec X = plan.forward(x);
  for (const cf32 v : X) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 128;
  FftPlan plan(n);
  cvec x(n);
  const std::size_t tone = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * M_PI * static_cast<double>(tone * i) /
                       static_cast<double>(n);
    x[i] = cf32{static_cast<float>(std::cos(ang)),
                static_cast<float>(std::sin(ang))};
  }
  const cvec X = plan.forward(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone) {
      EXPECT_NEAR(std::abs(X[k]), static_cast<double>(n), 1e-3);
    } else {
      EXPECT_NEAR(std::abs(X[k]), 0.0, 1e-3);
    }
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseOfForwardIsIdentity) {
  const std::size_t n = GetParam();
  FftPlan plan(n);
  Rng rng(n);
  cvec x(n);
  for (auto& v : x) v = rng.complex_normal();
  const cvec y = plan.inverse(plan.forward(x));
  EXPECT_LT(max_error(x, y), 1e-4) << "n=" << n;
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  FftPlan plan(n);
  Rng rng(n + 1);
  cvec x(n);
  for (auto& v : x) v = rng.complex_normal();
  const cvec X = plan.forward(x);
  const double time_energy = lscatter::dsp::energy(x);
  const double freq_energy =
      lscatter::dsp::energy(X) / static_cast<double>(n);
  EXPECT_NEAR(freq_energy, time_energy, 1e-3 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(AllLteSizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 16, 63, 128, 256, 512,
                                           1024, 1536, 2048, 3000));

TEST(Fft, BluesteinMatchesDirectDft) {
  const std::size_t n = 12;  // non power of two
  FftPlan plan(n);
  Rng rng(7);
  cvec x(n);
  for (auto& v : x) v = rng.complex_normal();
  const cvec X = plan.forward(x);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{};
    for (std::size_t i = 0; i < n; ++i) {
      const double ang = -2.0 * M_PI * static_cast<double>(i * k) /
                         static_cast<double>(n);
      acc += std::complex<double>(x[i].real(), x[i].imag()) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(X[k].real(), acc.real(), 1e-4);
    EXPECT_NEAR(X[k].imag(), acc.imag(), 1e-4);
  }
}

TEST(Fft, FftShiftCentersDc) {
  cvec x = {cf32{0, 0}, cf32{1, 0}, cf32{2, 0}, cf32{3, 0}};
  const cvec y = lscatter::dsp::fftshift(x);
  EXPECT_FLOAT_EQ(y[0].real(), 2.0f);
  EXPECT_FLOAT_EQ(y[1].real(), 3.0f);
  EXPECT_FLOAT_EQ(y[2].real(), 0.0f);
  EXPECT_FLOAT_EQ(y[3].real(), 1.0f);
}

TEST(Fft, OneShotHelpersUseCachedPlans) {
  Rng rng(3);
  cvec x(256);
  for (auto& v : x) v = rng.complex_normal();
  const cvec y = lscatter::dsp::ifft(lscatter::dsp::fft(x));
  EXPECT_LT(max_error(x, y), 1e-4);
}

TEST(Fft, CachedPlanStatsCountHitsAndMisses) {
  const auto before = lscatter::dsp::fft_runtime_stats();
  // An odd size nothing else in the test binary asks for: first call is a
  // miss, every later call a hit.
  const std::size_t n = 4099;
  lscatter::dsp::cached_fft_plan(n);
  lscatter::dsp::cached_fft_plan(n);
  lscatter::dsp::cached_fft_plan(n);
  const auto after = lscatter::dsp::fft_runtime_stats();
  EXPECT_EQ(after.plan_cache_misses, before.plan_cache_misses + 1);
  EXPECT_GE(after.plan_cache_hits, before.plan_cache_hits + 2);
}

// The workspace transforms must be deterministic: the same input through
// the same plan gives bit-identical output no matter which Workspace is
// used, how often it has been used, or what sizes it served before. The
// sim_pool serial-vs-parallel bit-identity guarantee rests on this.
class FftWorkspace : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftWorkspace, RepeatedCallsAreBitIdentical) {
  const std::size_t n = GetParam();
  FftPlan plan(n);
  Rng rng(n + 17);
  cvec x(n);
  for (auto& v : x) v = rng.complex_normal();

  FftPlan::Workspace ws = plan.make_workspace();
  cvec first(x);
  plan.forward_inplace(first, ws);
  for (int rep = 0; rep < 3; ++rep) {
    cvec again(x);
    plan.forward_inplace(again, ws);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(again[i], first[i]) << "n=" << n << " rep=" << rep
                                    << " i=" << i;
    }
  }

  // The thread-local-scratch overload and the allocating overload go
  // through the same kernel: also bit-identical.
  cvec tls(x);
  plan.forward_inplace(tls);
  const cvec alloc = plan.forward(x);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(tls[i], first[i]) << "i=" << i;
    ASSERT_EQ(alloc[i], first[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PowTwoAndBluestein, FftWorkspace,
                         ::testing::Values(128, 512, 1536, 2048, 3000));

TEST(Fft, OneWorkspaceServesMixedSizesBitIdentically) {
  // One workspace bounced between Bluestein and power-of-two plans of
  // different lengths: growth and buffer reuse must not leak state
  // between transforms. Reference outputs come from fresh workspaces.
  const std::size_t sizes[] = {1536, 128, 3000, 2048, 1536, 512};
  FftPlan::Workspace shared;
  bool shared_initialized = false;
  for (const std::size_t n : sizes) {
    FftPlan plan(n);
    if (!shared_initialized) {
      shared = plan.make_workspace();
      shared_initialized = true;
    }
    Rng rng(n + 29);
    cvec x(n);
    for (auto& v : x) v = rng.complex_normal();

    cvec via_shared(x);
    plan.forward_inplace(via_shared, shared);
    FftPlan::Workspace fresh = plan.make_workspace();
    cvec via_fresh(x);
    plan.forward_inplace(via_fresh, fresh);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(via_shared[i], via_fresh[i]) << "n=" << n << " i=" << i;
    }

    cvec inv_shared(via_shared);
    plan.inverse_inplace(inv_shared, shared);
    EXPECT_LT(max_error(x, inv_shared), 1e-4) << "n=" << n;
  }
}

TEST(Fft, WorkspaceBytesAreAccountedAndReleased) {
  const auto before = lscatter::dsp::fft_runtime_stats();
  {
    FftPlan plan(1536);  // Bluestein: needs both the a and u buffers
    FftPlan::Workspace ws = plan.make_workspace();
    EXPECT_GT(ws.bytes(), 0u);
    const auto during = lscatter::dsp::fft_runtime_stats();
    EXPECT_GE(during.workspace_bytes, before.workspace_bytes + ws.bytes());
    EXPECT_GE(during.workspace_bytes_peak, during.workspace_bytes);
  }
  const auto after = lscatter::dsp::fft_runtime_stats();
  EXPECT_EQ(after.workspace_bytes, before.workspace_bytes);
}

}  // namespace
