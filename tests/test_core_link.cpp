// End-to-end LScatter link integration tests: at close range the packet
// pipeline must run error-free; degradation must be monotone-ish in
// distance; the scheduled PHY rate must match the paper's headline math.

#include <gtest/gtest.h>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"

namespace {

using namespace lscatter;
using core::LinkConfig;
using core::LinkMetrics;
using core::LinkSimulator;
using core::make_scenario;
using core::Scene;
using core::ScenarioOptions;

TEST(LinkSimulator, CloseRangeHitsPaperHeadlineThroughput) {
  LinkConfig cfg = make_scenario(Scene::kSmartHome);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  LinkSimulator sim(cfg);
  const LinkMetrics m = sim.run(20);
  EXPECT_GT(m.packets_sent, 15u);
  EXPECT_EQ(m.packets_detected, m.packets_sent);
  // Per-unit decisions on the OFDM envelope have a ~1/(4*SNR) BER floor;
  // at close range it must be well below 1e-3 (paper Fig. 24 short range).
  EXPECT_LT(m.ber(), 1e-3);
  // ~13.5 Mbps at 20 MHz (paper: 13.63).
  EXPECT_GT(m.throughput_bps(), 12.5e6);
  EXPECT_LT(m.throughput_bps(), 14.5e6);
}

TEST(LinkSimulator, ShortPacketsSurviveCrcAtCloseRange) {
  LinkConfig cfg = make_scenario(Scene::kSmartHome);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  cfg.schedule.max_data_symbols_per_packet = 1;  // 1200-bit packets
  LinkSimulator sim(cfg);
  const LinkMetrics m = sim.run(20);
  EXPECT_GT(m.packet_delivery_ratio(), 0.8);
  EXPECT_GT(m.goodput_bps(), 0.0);
}

TEST(LinkSimulator, ScheduledPhyRateMatchesPaperHeadline) {
  const LinkConfig cfg = make_scenario(Scene::kSmartHome);
  LinkSimulator sim(cfg);
  // 113 modulated data symbols per frame * 1200 bits = 13.56 Mbps.
  EXPECT_NEAR(sim.scheduled_phy_rate_bps(), 13.56e6, 0.2e6);
}

TEST(LinkSimulator, BandwidthScalesThroughput) {
  ScenarioOptions opt;
  opt.bandwidth = lte::Bandwidth::kMHz1_4;
  LinkConfig cfg = make_scenario(Scene::kSmartHome, opt);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  LinkSimulator sim(cfg);
  const LinkMetrics m = sim.run(20);
  EXPECT_LT(m.ber(), 1e-2);
  // ~0.81 Mbps at 1.4 MHz (paper: ~800 kbps).
  EXPECT_GT(m.throughput_bps(), 0.7e6);
  EXPECT_LT(m.throughput_bps(), 0.95e6);
}

TEST(LinkSimulator, FarLinkDegrades) {
  LinkConfig cfg = make_scenario(Scene::kSmartHome);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  cfg.geometry.enb_tag_ft = 25.0;
  cfg.geometry.tag_ue_ft = 60.0;
  LinkSimulator near_sim(make_scenario(Scene::kSmartHome));
  LinkSimulator far_sim(cfg);
  const LinkMetrics near_m = near_sim.run(20);
  const LinkMetrics far_m = far_sim.run(20);
  EXPECT_LT(far_m.throughput_bps(), near_m.throughput_bps());
  EXPECT_GT(far_m.ber(), near_m.ber());
}

TEST(LinkSimulator, SyncErrorWithinToleranceIsHarmless) {
  LinkConfig cfg = make_scenario(Scene::kSmartHome);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  // Push the residual sync error near (but within) the one-sided
  // tolerance of (K - N_sc)/2 units = 424 units = 13.8 us at 20 MHz.
  cfg.sync.bias_s = 10e-6;
  cfg.sync.sigma_s = 0.5e-6;
  cfg.search.range_units = 500;  // 10 us = 307 units at 30.72 Msps
  LinkSimulator sim(cfg);
  const LinkMetrics m = sim.run(10);
  EXPECT_LT(m.ber(), 1e-3);
  EXPECT_EQ(m.packets_detected, m.packets_sent);
}

TEST(LinkSimulator, SyncErrorBeyondToleranceBreaksLink) {
  LinkConfig cfg = make_scenario(Scene::kSmartHome);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  cfg.sync.bias_s = 30e-6;  // > 13.8 us tolerance
  cfg.sync.sigma_s = 0.1e-6;
  // Widen the receiver search so failure is due to window clipping, not
  // the search range.
  cfg.search.range_units = 1200;
  LinkSimulator sim(cfg);
  const LinkMetrics m = sim.run(10);
  EXPECT_GT(m.ber(), 0.05);
}

TEST(LinkSimulator, DropStateReportsBudget) {
  LinkConfig cfg = make_scenario(Scene::kSmartHome);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  LinkSimulator sim(cfg);
  (void)sim.run(2);
  const core::DropState& d = sim.last_drop();
  EXPECT_LT(d.backscatter_rx_dbm, cfg.enodeb.tx_power_dbm);
  EXPECT_LT(d.noise_dbm, d.backscatter_rx_dbm);  // positive SNR up close
  EXPECT_GT(d.mean_snr_db.value(), 15.0);
}

}  // namespace
