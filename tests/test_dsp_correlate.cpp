// Correlation utilities used by cell search and preamble alignment.

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/rng.hpp"

namespace {

using namespace lscatter::dsp;

TEST(Correlate, FindsPatternAtKnownLag) {
  Rng rng(3);
  cvec pattern(64);
  for (auto& v : pattern) v = rng.complex_normal();
  cvec signal(512);
  for (auto& v : signal) v = rng.complex_normal(0.01);
  const std::size_t lag = 137;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    signal[lag + i] += pattern[i];
  }
  const cvec corr = cross_correlate(signal, pattern);
  EXPECT_EQ(peak_abs(corr).index, lag);
}

TEST(Correlate, NormalizedMetricIsBoundedAndPeaksAtOne) {
  Rng rng(5);
  cvec pattern(32);
  for (auto& v : pattern) v = rng.complex_normal();
  cvec signal(256, cf32{});
  const std::size_t lag = 100;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    signal[lag + i] = pattern[i] * cf32{0.5f, 0.5f};  // scaled + rotated
  }
  const fvec m = normalized_correlation(signal, pattern);
  for (const float v : m) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f + 1e-4f);
  }
  const Peak p = peak(m);
  EXPECT_EQ(p.index, lag);
  EXPECT_NEAR(p.value, 1.0f, 1e-3);
}

TEST(Correlate, NoiseOnlyMetricStaysLow) {
  Rng rng(7);
  cvec pattern(128);
  for (auto& v : pattern) v = rng.complex_normal();
  cvec noise(2048);
  for (auto& v : noise) v = rng.complex_normal();
  const fvec m = normalized_correlation(noise, pattern);
  EXPECT_LT(peak(m).value, 0.35f);  // ~1/sqrt(128) plus fluctuation
}

TEST(Correlate, PeakAbsOnSingleElement) {
  const cvec one = {cf32{3.0f, 4.0f}};
  const Peak p = peak_abs(one);
  EXPECT_EQ(p.index, 0u);
  EXPECT_FLOAT_EQ(p.value, 5.0f);
}

}  // namespace
