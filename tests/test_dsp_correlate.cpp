// Correlation utilities used by cell search and preamble alignment:
// the direct O(N·M) kernel, the overlap-save FFT kernel, and their
// equivalence (the FFT kernel is the hot path; the direct kernel is the
// reference it must match).

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "dsp/correlate.hpp"
#include "dsp/rng.hpp"
#include "lte/cell_config.hpp"
#include "lte/ue_sync.hpp"

namespace {

using namespace lscatter::dsp;

// Largest |fast - naive| relative to the largest naive magnitude. Both
// kernels accumulate in double and round once to cf32, so they agree to
// well under the 1e-4 acceptance tolerance.
float max_relative_error(const cvec& naive, const cvec& fast) {
  EXPECT_EQ(naive.size(), fast.size());
  float ref = 0.0f;
  for (const cf32 v : naive) ref = std::max(ref, std::abs(v));
  EXPECT_GT(ref, 0.0f);
  float err = 0.0f;
  for (std::size_t i = 0; i < naive.size(); ++i) {
    err = std::max(err, std::abs(naive[i] - fast[i]));
  }
  return err / ref;
}

TEST(Correlate, FindsPatternAtKnownLag) {
  Rng rng(3);
  cvec pattern(64);
  for (auto& v : pattern) v = rng.complex_normal();
  cvec signal(512);
  for (auto& v : signal) v = rng.complex_normal(0.01);
  const std::size_t lag = 137;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    signal[lag + i] += pattern[i];
  }
  const cvec corr = cross_correlate(signal, pattern);
  EXPECT_EQ(peak_abs(corr).index, lag);
}

TEST(Correlate, NormalizedMetricIsBoundedAndPeaksAtOne) {
  Rng rng(5);
  cvec pattern(32);
  for (auto& v : pattern) v = rng.complex_normal();
  cvec signal(256, cf32{});
  const std::size_t lag = 100;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    signal[lag + i] = pattern[i] * cf32{0.5f, 0.5f};  // scaled + rotated
  }
  const fvec m = normalized_correlation(signal, pattern);
  for (const float v : m) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f + 1e-4f);
  }
  const Peak p = peak(m);
  EXPECT_EQ(p.index, lag);
  EXPECT_NEAR(p.value, 1.0f, 1e-3);
}

TEST(Correlate, NoiseOnlyMetricStaysLow) {
  Rng rng(7);
  cvec pattern(128);
  for (auto& v : pattern) v = rng.complex_normal();
  cvec noise(2048);
  for (auto& v : noise) v = rng.complex_normal();
  const fvec m = normalized_correlation(noise, pattern);
  EXPECT_LT(peak(m).value, 0.35f);  // ~1/sqrt(128) plus fluctuation
}

TEST(Correlate, FastMatchesNaiveOnRandomInput) {
  // Spans the direct-fallback region (tiny pattern / few lags) and the
  // genuine overlap-save region, including non-round sizes that exercise
  // the final partial block.
  struct Case {
    std::size_t signal, pattern;
  };
  for (const Case c : {Case{64, 8}, Case{100, 33}, Case{1000, 64},
                       Case{4096, 128}, Case{7680, 512}, Case{5000, 512},
                       Case{777, 700}}) {
    Rng rng(c.signal + c.pattern);
    cvec sig(c.signal);
    cvec pat(c.pattern);
    for (auto& v : sig) v = rng.complex_normal();
    for (auto& v : pat) v = rng.complex_normal();
    const cvec naive = cross_correlate(sig, pat);
    const cvec fast = fast_correlate(sig, pat);
    EXPECT_LE(max_relative_error(naive, fast), 1e-4f)
        << "signal=" << c.signal << " pattern=" << c.pattern;
  }
}

TEST(Correlate, FastMatchesNaiveOnPssReplica) {
  // The production input: a PSS Zadoff-Chu replica correlated against an
  // LTE-bandwidth sample stream. ZC sequences have constant amplitude
  // and quadratic phase — a structured input that would expose any
  // chirp/twiddle bookkeeping error the random case averages out.
  lscatter::lte::CellConfig cell;
  cell.bandwidth = lscatter::lte::Bandwidth::kMHz5;
  const lscatter::lte::CellSearcher searcher(cell);
  for (std::uint8_t id2 = 0; id2 < 3; ++id2) {
    const cvec& replica = searcher.pss_replica(id2);
    Rng rng(40 + id2);
    cvec sig(cell.samples_per_subframe());
    for (auto& v : sig) v = rng.complex_normal(0.1);
    // Bury the replica at a known offset so the comparison covers a
    // realistic detection, not just noise.
    const std::size_t lag = 1234;
    for (std::size_t i = 0; i < replica.size(); ++i) sig[lag + i] += replica[i];
    const cvec naive = cross_correlate(sig, replica);
    const cvec fast = fast_correlate(sig, replica);
    EXPECT_LE(max_relative_error(naive, fast), 1e-4f) << "id2=" << int(id2);
    EXPECT_EQ(peak_abs(fast).index, lag);
  }
}

TEST(Correlate, FastNormalizedMatchesDirectNormalized) {
  Rng rng(11);
  cvec pat(96);
  for (auto& v : pat) v = rng.complex_normal();
  cvec sig(2048);
  for (auto& v : sig) v = rng.complex_normal(0.05);
  for (std::size_t i = 0; i < pat.size(); ++i) sig[500 + i] += pat[i];
  const fvec direct = normalized_correlation(sig, pat);
  const fvec fast = fast_normalized_correlation(sig, pat);
  ASSERT_EQ(direct.size(), fast.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], fast[i], 1e-4f) << "lag " << i;
  }
  EXPECT_EQ(peak(fast).index, 500u);
}

TEST(Correlate, IntoVariantsMatchAllocatingVariants) {
  Rng rng(13);
  cvec sig(3000);
  cvec pat(256);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  const std::size_t lags = sig.size() - pat.size() + 1;

  cvec out(lags);
  fast_correlate_into(sig, pat, out);
  const cvec ref = fast_correlate(sig, pat);
  for (std::size_t i = 0; i < lags; ++i) {
    EXPECT_EQ(out[i], ref[i]) << "lag " << i;  // same code path: bit-equal
  }

  fvec nout(lags);
  fast_normalized_correlation_into(sig, pat, nout);
  const fvec nref = fast_normalized_correlation(sig, pat);
  for (std::size_t i = 0; i < lags; ++i) {
    EXPECT_EQ(nout[i], nref[i]) << "lag " << i;
  }
}

// TSan-lane test: the fast kernel shares the process-wide FFT plan cache
// across threads; each thread has its own scratch, so concurrent searches
// must race-free and return results identical to a serial run.
TEST(Correlate, FastCorrelateIsThreadSafeAndDeterministic) {
  Rng rng(17);
  cvec sig(4096);
  cvec pat(512);
  for (auto& v : sig) v = rng.complex_normal();
  for (auto& v : pat) v = rng.complex_normal();
  const cvec expected = fast_correlate(sig, pat);

  constexpr int kThreads = 8;
  constexpr int kReps = 4;
  std::vector<cvec> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int r = 0; r < kReps; ++r) results[t] = fast_correlate(sig, pat);
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(results[t][i], expected[i]) << "thread " << t << " lag " << i;
    }
  }
}

TEST(Correlate, PeakAbsOnSingleElement) {
  const cvec one = {cf32{3.0f, 4.0f}};
  const Peak p = peak_abs(one);
  EXPECT_EQ(p.index, 0u);
  EXPECT_FLOAT_EQ(p.value, 5.0f);
}

}  // namespace
