// Dense complex solver + FIR least squares (the equalizer's estimator).

#include <gtest/gtest.h>

#include "dsp/linalg.hpp"
#include "dsp/rng.hpp"

namespace {

using namespace lscatter::dsp;

TEST(SolveDense, KnownTwoByTwo) {
  // [1 2; 3 4] x = [5; 11] -> x = [1; 2]
  const std::vector<cf64> a = {{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const std::vector<cf64> b = {{5, 0}, {11, 0}};
  const auto x = solve_dense(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 2.0, 1e-12);
}

TEST(SolveDense, ComplexCoefficients) {
  // (1+j) x = (2): x = 2/(1+j) = 1 - j
  const std::vector<cf64> a = {{1, 1}};
  const std::vector<cf64> b = {{2, 0}};
  const auto x = solve_dense(a, b);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
}

TEST(SolveDense, SingularReturnsEmpty) {
  const std::vector<cf64> a = {{1, 0}, {2, 0}, {2, 0}, {4, 0}};
  const std::vector<cf64> b = {{1, 0}, {2, 0}};
  EXPECT_TRUE(solve_dense(a, b).empty());
}

TEST(SolveDense, RandomSystemRoundTrip) {
  Rng rng(11);
  const std::size_t n = 12;
  std::vector<cf64> a(n * n);
  std::vector<cf64> x_true(n);
  for (auto& v : a) {
    const cf32 g = rng.complex_normal();
    v = cf64{g.real(), g.imag()};
  }
  for (auto& v : x_true) {
    const cf32 g = rng.complex_normal();
    v = cf64{g.real(), g.imag()};
  }
  std::vector<cf64> b(n, cf64{});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) b[i] += a[i * n + k] * x_true[k];
  }
  const auto x = solve_dense(a, b);
  ASSERT_EQ(x.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9);
  }
}

TEST(FirLeastSquares, RecoversTrueChannelExactly) {
  Rng rng(1);
  const std::size_t n = 512;
  cvec u(n);
  for (auto& v : u) v = rng.complex_normal();
  const cf64 h_true[3] = {{1.0, 0.2}, {0.4, -0.3}, {0.1, 0.05}};
  cvec r(n, cf32{});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t l = 0; l <= 2 && l <= k; ++l) {
      r[k] += cf32{static_cast<float>(h_true[l].real()),
                   static_cast<float>(h_true[l].imag())} *
              u[k - l];
    }
  }
  const auto h = fir_least_squares(u, r, 5);
  ASSERT_EQ(h.size(), 5u);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_NEAR(std::abs(h[l] - h_true[l]), 0.0, 1e-4) << l;
  }
  EXPECT_NEAR(std::abs(h[3]), 0.0, 1e-4);
  EXPECT_NEAR(std::abs(h[4]), 0.0, 1e-4);
}

TEST(FirLeastSquares, NoisyFitStaysClose) {
  Rng rng(2);
  const std::size_t n = 2048;
  cvec u(n);
  cvec r(n);
  const cf32 h0{0.8f, -0.6f};
  for (std::size_t k = 0; k < n; ++k) {
    u[k] = rng.complex_normal();
    r[k] = h0 * u[k] + rng.complex_normal(1e-3);
  }
  const auto h = fir_least_squares(u, r, 4);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_NEAR(h[0].real(), h0.real(), 0.01);
  EXPECT_NEAR(h[0].imag(), h0.imag(), 0.01);
}

TEST(FirLeastSquares, TooFewSamplesReturnsEmpty) {
  cvec u(10);
  cvec r(10);
  EXPECT_TRUE(fir_least_squares(u, r, 8).empty());
}

}  // namespace
