// Labeled metric families (obs/family.hpp) and thread-sharded counters
// (obs/sharded.hpp): flattened `name{label=value}` registration, the
// bounded-cardinality overflow contract (cap hit -> obs.labels.dropped
// counts each collapsed value, report stays schema-valid), report-side
// merging of sharded cells, and the diff-side promise that a labeled
// report against an unlabeled baseline fails only as added metric rows,
// never as a schema break.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/diff.hpp"
#include "obs/family.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/sharded.hpp"

namespace {

using namespace lscatter;

TEST(ObsFamily, CellsRegisterUnderFlattenedNames) {
  obs::CounterFamily family("test.family.decoded", "tag");
  family.cell(std::string_view("7")).add(3);
  family.cell(std::uint64_t{7}).add(2);  // same cell via the int overload
  family.cell(std::string_view("9")).add(1);

  obs::Registry& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter_value("test.family.decoded{tag=7}"), 5u);
  EXPECT_EQ(reg.counter_value("test.family.decoded{tag=9}"), 1u);
  EXPECT_EQ(family.size(), 2u);
  EXPECT_EQ(family.name(), "test.family.decoded");
  EXPECT_EQ(family.label_key(), "tag");
}

TEST(ObsFamily, CellAddressesAreStable) {
  obs::GaugeFamily family("test.family.depth", "stage");
  obs::Gauge& a = family.cell(std::string_view("acquire"));
  a.set(4.0);
  EXPECT_EQ(&family.cell(std::string_view("acquire")), &a);
  EXPECT_EQ(family.cell(std::string_view("acquire")).value(), 4.0);
}

TEST(ObsFamily, LabelValuesAreSanitized) {
  obs::CounterFamily family("test.family.sanitized", "key");
  family.cell(std::string_view("a{b}=c,d\"e")).add(1);
  EXPECT_EQ(obs::Registry::instance().counter_value(
                "test.family.sanitized{key=a_b__c_d_e}"),
            1u);
}

TEST(ObsFamily, CardinalityOverflowCollapsesAndCounts) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& dropped = reg.counter(obs::kLabelsDroppedCounter);
  const std::uint64_t dropped_before = dropped.value();

  obs::HistogramFamily family("test.family.lat.seconds", "tag",
                              /*max_cells=*/3);
  for (std::uint64_t t = 0; t < 8; ++t) {
    family.cell(t).record(1e-3);
  }
  // 3 real cells; tags 3..7 (5 distinct values) collapsed.
  EXPECT_EQ(family.size(), 3u);
  EXPECT_EQ(dropped.value() - dropped_before, 5u);

  // Repeat hits on collapsed values do not re-count.
  family.cell(std::uint64_t{5}).record(2e-3);
  EXPECT_EQ(dropped.value() - dropped_before, 5u);

  // All collapsed values share the __other__ overflow cell.
  const obs::Histogram* overflow =
      reg.find_histogram("test.family.lat.seconds{tag=__other__}");
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->count(), 6u);  // tags 3..7 once each + tag 5 again

  // The overflowed family still yields a schema-valid lscatter.obs/1
  // report: diffing it against itself must be clean, not a schema error.
  const obs::json::Value report = obs::build_report("family-overflow");
  EXPECT_EQ(report.find("schema")->as_string(), "lscatter.obs/1");
  const obs::DiffResult self = obs::diff_reports(report, report);
  EXPECT_TRUE(self.ok());
}

TEST(ObsFamily, LabeledVsUnlabeledDiffIsAddedRowsNotSchema) {
  // Baseline: report before the labeled family exists.
  const obs::json::Value base = obs::build_report("label-diff");

  obs::CounterFamily family("test.family.diffcase", "tag");
  family.cell(std::uint64_t{0}).add(1);
  family.cell(std::uint64_t{1}).add(1);
  const obs::json::Value labeled = obs::build_report("label-diff");

  const obs::DiffResult result = obs::diff_reports(base, labeled);
  EXPECT_TRUE(result.has_drift());  // new rows gate curated baselines
  for (const obs::DiffFinding& f : result.findings) {
    if (f.severity != obs::DiffSeverity::kDrift) continue;
    // Every drift finding is a genuinely-new metric row — never a
    // schema_mismatch or a removal.
    EXPECT_EQ(f.kind, "metric_added");
  }

  // Regress-style gating (historical median baseline) demotes the added
  // rows to info, so freshly labeled code doesn't fail the nightly.
  obs::DiffOptions ignore;
  ignore.ignore_added_metrics = true;
  const obs::DiffResult tolerant = obs::diff_reports(base, labeled, ignore);
  EXPECT_FALSE(tolerant.has_drift());
  EXPECT_TRUE(tolerant.ok());
  bool saw_added_info = false;
  for (const obs::DiffFinding& f : tolerant.findings) {
    if (f.kind == "metric_added") {
      EXPECT_EQ(f.severity, obs::DiffSeverity::kInfo);
      saw_added_info = true;
    }
  }
  EXPECT_TRUE(saw_added_info);

  // metric_removed stays drift even in tolerant mode.
  const obs::DiffResult removed = obs::diff_reports(labeled, base, ignore);
  EXPECT_TRUE(removed.has_drift());
}

TEST(ObsSharded, MergesAcrossThreadsAndReportsAsPlainRow) {
  obs::Registry& reg = obs::Registry::instance();
  obs::ShardedCounter& c = reg.sharded_counter("test.sharded.hits");
  c.reset();

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : team) t.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(reg.counter_value("test.sharded.hits"), kThreads * kPerThread);
  EXPECT_EQ(reg.find_sharded_counter("test.sharded.hits"), &c);
  // Sharded names appear in the plain counter namespace...
  const auto names = reg.counter_names();
  EXPECT_NE(std::find(names.begin(), names.end(),
                      std::string("test.sharded.hits")),
            names.end());
  // ...and in the report's counters section, already merged.
  const obs::json::Value report = obs::build_report("sharded-merge");
  EXPECT_EQ(report.find("counters")->find("test.sharded.hits")->as_number(),
            static_cast<double>(kThreads * kPerThread));
  // find_counter sees only plain counters: no phantom plain registration.
  EXPECT_EQ(reg.find_counter("test.sharded.hits"), nullptr);

  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsSharded, PlainAndShardedSameNameReportTheSum) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test.sharded.both").add(3);
  reg.sharded_counter("test.sharded.both").add(4);
  EXPECT_EQ(reg.counter_value("test.sharded.both"), 7u);
  // One row, not two, in the merged name list.
  const auto names = reg.counter_names();
  EXPECT_EQ(std::count(names.begin(), names.end(),
                       std::string("test.sharded.both")),
            1);
}

TEST(ObsSharded, ResetAllClearsShardedCells) {
  obs::Registry& reg = obs::Registry::instance();
  reg.sharded_counter("test.sharded.resettable").add(9);
  reg.reset_all();
  EXPECT_EQ(reg.counter_value("test.sharded.resettable"), 0u);
}

}  // namespace
