// Impairment robustness: UE carrier frequency offset and tag clock drift.

#include <gtest/gtest.h>

#include "core/link_simulator.hpp"
#include "core/scenario.hpp"

namespace {

using namespace lscatter;

core::LinkConfig base_config(std::uint64_t seed) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  core::LinkConfig cfg = core::make_scenario(core::Scene::kSmartHome, opt);
  cfg.env.pathloss.shadowing_sigma_db = dsp::Db{0.0};
  return cfg;
}

class CfoSweep : public ::testing::TestWithParam<double> {};

TEST_P(CfoSweep, PerSymbolGainTrackingAbsorbsModerateCfo) {
  core::LinkConfig cfg = base_config(123);
  cfg.env.ue_cfo_hz = dsp::Hz{GetParam()};
  core::LinkSimulator sim(cfg);
  const auto m = sim.run(10);
  EXPECT_EQ(m.packets_detected, m.packets_sent);
  // Up to ~1 kHz the per-symbol phase re-estimation keeps BER near the
  // no-CFO floor.
  EXPECT_LT(m.ber(), 2e-3) << "CFO " << GetParam() << " Hz";
}

INSTANTIATE_TEST_SUITE_P(UpToOneKilohertz, CfoSweep,
                         ::testing::Values(0.0, 50.0, 200.0, 500.0,
                                           1000.0, -700.0));

TEST(Cfo, VeryLargeCfoBreaksCoherence) {
  core::LinkConfig cfg = base_config(321);
  cfg.env.ue_cfo_hz = dsp::Hz{40e3};  // intra-symbol rotation >> slicer margin
  core::LinkSimulator sim(cfg);
  const auto m = sim.run(10);
  EXPECT_GT(m.ber(), 0.05);
}

TEST(ClockDrift, LargePpmEatsTheOffsetMarginAtLongResyncPeriods) {
  core::LinkConfig good = base_config(55);
  good.sync.clock_ppm = 10.0;
  good.schedule.resync_period_subframes = 50;
  good.search.range_units = 500;

  core::LinkConfig bad = good;
  bad.sync.clock_ppm = 400.0;  // 400 ppm * 49 ms = ~20 us drift: clipped

  const auto mg = core::LinkSimulator(good).run(50);
  const auto mb = core::LinkSimulator(bad).run(50);
  EXPECT_LT(mg.ber(), 1e-3);
  EXPECT_GT(mb.ber(), 10.0 * (mg.ber() + 1e-6));
}

}  // namespace
