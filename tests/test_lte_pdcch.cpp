// PDCCH-lite: DCI encode/map/decode and the fully blind RE-type
// derivation + ambient reconstruction it enables.

#include <gtest/gtest.h>

#include "channel/awgn.hpp"
#include "core/ambient_reconstructor.hpp"
#include "dsp/rng.hpp"
#include "lte/enodeb.hpp"
#include "lte/pdcch.hpp"
#include "lte/signal_map.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;

TEST(Dci, BitsRoundTrip) {
  lte::Dci dci;
  dci.center_active_mask = 0x2A7F;
  dci.mcs = lte::Modulation::kQam64;
  const auto bits = lte::dci_to_bits(dci);
  const auto back = lte::bits_to_dci(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, dci);
  EXPECT_TRUE(dci.center_active(0));
  EXPECT_FALSE(dci.center_active(7));
}

TEST(Dci, InvalidMcsRejected) {
  std::array<std::uint8_t, 16> bits{};
  bits[14] = 1;
  bits[15] = 1;  // MCS code 3
  EXPECT_FALSE(lte::bits_to_dci(bits).has_value());
}

TEST(Pdcch, MapDecodeRoundTrip) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz10;
  cfg.n_id_1 = 33;
  lte::Dci dci;
  dci.center_active_mask = 0x1234;
  dci.mcs = lte::Modulation::kQpsk;
  lte::ResourceGrid grid(cfg);
  lte::map_pdcch(cfg, dci, grid);
  const auto back = lte::decode_pdcch(cfg, grid);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, dci);
}

TEST(Pdcch, ControlRegionAvoidsCrs) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz5;
  cfg.n_id_1 = 7;
  const auto pos = lte::pdcch_subcarriers(cfg);
  const std::size_t v_shift = cfg.cell_id() % 6;
  for (const std::size_t k : pos) {
    EXPECT_NE(k % 6, v_shift % 6);
  }
  // 2 of every 12 subcarriers are CRS at l=0 (wait: 1 in 6).
  EXPECT_EQ(pos.size(), cfg.n_subcarriers() * 5 / 6);
}

TEST(Pdcch, DecodeSurvivesNoise) {
  lte::CellConfig cfg;
  cfg.bandwidth = lte::Bandwidth::kMHz20;
  lte::Dci dci;
  dci.center_active_mask = 0x3001;
  lte::ResourceGrid grid(cfg);
  lte::map_pdcch(cfg, dci, grid);
  dsp::Rng rng(4);
  for (const std::size_t k : lte::pdcch_subcarriers(cfg)) {
    grid.at(lte::kPdcchSymbolIndex, k) += rng.complex_normal(0.5);
  }
  const auto back = lte::decode_pdcch(cfg, grid);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, dci);
}

TEST(DeriveReTypes, MatchesTheEnodebsOwnGrid) {
  // The blind derivation must agree RE-for-RE with what the eNodeB
  // actually mapped, across sync and non-sync subframes.
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz10;
  ecfg.cell.n_id_1 = 55;
  ecfg.seed = 6;
  lte::Enodeb enb(ecfg);
  for (const std::size_t sf : {0u, 1u, 5u, 7u, 10u}) {
    const auto tx = enb.make_subframe(sf);
    const auto types = lte::derive_re_types(ecfg.cell, sf, tx.dci,
                                            ecfg.enable_pbch);
    const std::size_t n_sc = ecfg.cell.n_subcarriers();
    for (std::size_t l = 0; l < lte::kSymbolsPerSubframe; ++l) {
      for (std::size_t k = 0; k < n_sc; ++k) {
        ASSERT_EQ(types[l * n_sc + k], tx.grid.type_at(l, k))
            << "sf " << sf << " l " << l << " k " << k;
      }
    }
  }
}

TEST(BlindReconstruction, NoGenieInputsStillRebuildsTheWaveform) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  ecfg.cell.n_id_1 = 12;
  ecfg.cell.n_id_2 = 1;
  ecfg.seed = 8;
  lte::Enodeb enb(ecfg);
  const auto tx = enb.make_subframe(3);

  // Realistic direct-link input: scaled, rotated, noisy.
  dsp::cvec rx(tx.samples.size());
  const cf32 h{3e-4f, -2e-4f};
  for (std::size_t n = 0; n < rx.size(); ++n) rx[n] = h * tx.samples[n];
  dsp::Rng noise(9);
  channel::add_awgn(rx, 1e-12, noise);

  core::AmbientReconstructor rec(ecfg.cell);
  const auto blind = rec.reconstruct_blind(rx, 3, ecfg.enable_pbch,
                                           ecfg.sync_boost_db);
  ASSERT_TRUE(blind.has_value());

  // Compare against the true waveform: the blind rebuild should be close
  // to exact (a few QAM decisions may flip at this SNR).
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t n = 0; n < tx.samples.size(); ++n) {
    err += std::norm(blind->samples[n] - tx.samples[n]);
    ref += std::norm(tx.samples[n]);
  }
  EXPECT_LT(err / ref, 0.02);
}

TEST(BlindReconstruction, FailsCleanlyWithoutControlChannel) {
  lte::Enodeb::Config ecfg;
  ecfg.cell.bandwidth = lte::Bandwidth::kMHz5;
  ecfg.enable_pdcch = false;  // nothing to decode
  ecfg.seed = 10;
  lte::Enodeb enb(ecfg);
  const auto tx = enb.make_subframe(2);
  core::AmbientReconstructor rec(ecfg.cell);
  EXPECT_FALSE(rec.reconstruct_blind(tx.samples, 2).has_value());
}

}  // namespace
