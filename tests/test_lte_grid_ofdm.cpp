// Numerology, resource grid mapping, and OFDM round trips across all six
// LTE bandwidths.

#include <gtest/gtest.h>

#include <set>

#include "dsp/rng.hpp"
#include "lte/cell_config.hpp"
#include "lte/ofdm.hpp"
#include "lte/resource_grid.hpp"

namespace {

using namespace lscatter;
using dsp::cf32;

class PerBandwidth : public ::testing::TestWithParam<lte::Bandwidth> {
 protected:
  lte::CellConfig cell() const {
    lte::CellConfig c;
    c.bandwidth = GetParam();
    return c;
  }
};

TEST_P(PerBandwidth, NumerologyInvariants) {
  const auto c = cell();
  // A slot is exactly 0.5 ms of samples.
  EXPECT_EQ(c.samples_per_slot(),
            static_cast<std::size_t>(c.sample_rate_hz() * 0.5e-3));
  EXPECT_EQ(c.samples_per_subframe(), 2 * c.samples_per_slot());
  EXPECT_EQ(c.samples_per_frame(), 10 * c.samples_per_subframe());
  // CP ratios follow the 160/144-in-2048 pattern.
  EXPECT_EQ(c.cp0_samples() * 128, 10 * c.fft_size());
  EXPECT_EQ(c.cp_samples() * 128, 9 * c.fft_size());
  // Subcarriers fit within the FFT with guards.
  EXPECT_LT(c.n_subcarriers(), c.fft_size());
  // The basic timing unit is one sample.
  EXPECT_NEAR(c.basic_timing_unit_s() * c.sample_rate_hz(), 1.0, 1e-9);
}

TEST_P(PerBandwidth, SymbolOffsetsTileTheSlot) {
  const auto c = cell();
  std::size_t expected = 0;
  for (std::size_t l = 0; l < lte::kSymbolsPerSlot; ++l) {
    EXPECT_EQ(c.symbol_offset_in_slot(l), expected);
    expected += c.cp_length(l) + c.fft_size();
  }
  EXPECT_EQ(expected, c.samples_per_slot());
}

TEST_P(PerBandwidth, SubcarrierToBinIsInjectiveAndSkipsDc) {
  const auto c = cell();
  lte::ResourceGrid grid(c);
  std::set<std::size_t> bins;
  for (std::size_t sc = 0; sc < c.n_subcarriers(); ++sc) {
    const std::size_t bin = grid.subcarrier_to_bin(sc);
    EXPECT_NE(bin, 0u) << "DC bin must stay empty";
    EXPECT_LT(bin, c.fft_size());
    EXPECT_TRUE(bins.insert(bin).second) << "bin collision at sc " << sc;
  }
}

TEST_P(PerBandwidth, OfdmModulateDemodulateRoundTrip) {
  const auto c = cell();
  lte::ResourceGrid grid(c);
  dsp::Rng rng(static_cast<std::uint64_t>(GetParam()) + 5);
  for (std::size_t l = 0; l < grid.n_symbols(); ++l) {
    for (std::size_t k = 0; k < grid.n_subcarriers(); ++k) {
      grid.at(l, k) = rng.complex_normal();
    }
  }
  const lte::OfdmModulator mod(c);
  const lte::OfdmDemodulator demod(c);
  const auto samples = mod.modulate(grid);
  EXPECT_EQ(samples.size(), c.samples_per_subframe());
  const auto rx = demod.demodulate(samples);
  double max_err = 0.0;
  for (std::size_t l = 0; l < grid.n_symbols(); ++l) {
    for (std::size_t k = 0; k < grid.n_subcarriers(); ++k) {
      max_err = std::max(
          max_err,
          static_cast<double>(std::abs(rx.at(l, k) - grid.at(l, k))));
    }
  }
  EXPECT_LT(max_err, 1e-3);
}

TEST_P(PerBandwidth, CyclicPrefixIsACopyOfTheSymbolTail) {
  const auto c = cell();
  lte::ResourceGrid grid(c);
  dsp::Rng rng(17);
  for (std::size_t k = 0; k < grid.n_subcarriers(); ++k) {
    grid.at(3, k) = rng.complex_normal();
  }
  const lte::OfdmModulator mod(c);
  const auto sym = mod.modulate_symbol(grid, 3);
  const std::size_t cp = c.cp_samples();
  const std::size_t k_fft = c.fft_size();
  ASSERT_EQ(sym.size(), cp + k_fft);
  for (std::size_t i = 0; i < cp; ++i) {
    EXPECT_NEAR(std::abs(sym[i] - sym[k_fft + i]), 0.0, 1e-5);
  }
}

TEST_P(PerBandwidth, UnitGridPowerGivesUnitSamplePower) {
  const auto c = cell();
  lte::ResourceGrid grid(c);
  dsp::Rng rng(23);
  for (std::size_t l = 0; l < grid.n_symbols(); ++l) {
    for (std::size_t k = 0; k < grid.n_subcarriers(); ++k) {
      grid.at(l, k) = rng.complex_normal();
    }
  }
  const lte::OfdmModulator mod(c);
  const auto samples = mod.modulate(grid);
  EXPECT_NEAR(dsp::mean_power(samples), 1.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllBandwidths, PerBandwidth,
                         ::testing::ValuesIn(lte::kAllBandwidths));

TEST(ResourceGrid, TypesDefaultToDataAndClearResets) {
  lte::CellConfig c;
  c.bandwidth = lte::Bandwidth::kMHz1_4;
  lte::ResourceGrid grid(c);
  EXPECT_EQ(grid.type_at(0, 0), lte::ReType::kData);
  grid.at(1, 2) = cf32{1.0f, 0.0f};
  grid.type_at(1, 2) = lte::ReType::kPss;
  grid.clear();
  EXPECT_EQ(grid.at(1, 2), cf32{});
  EXPECT_EQ(grid.type_at(1, 2), lte::ReType::kData);
}

TEST(CellConfig, DescribeMentionsBandwidthAndCellId) {
  lte::CellConfig c;
  c.bandwidth = lte::Bandwidth::kMHz10;
  c.n_id_1 = 5;
  c.n_id_2 = 2;
  const std::string s = c.describe();
  EXPECT_NE(s.find("10MHz"), std::string::npos);
  EXPECT_NE(s.find("17"), std::string::npos);  // 3*5+2
}

}  // namespace
