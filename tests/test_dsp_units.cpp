// Strong unit types: the log-domain algebra must match the db.hpp helpers
// and only physically meaningful combinations may exist.

#include <gtest/gtest.h>

#include <type_traits>

#include "dsp/db.hpp"
#include "dsp/units.hpp"

namespace {

using namespace lscatter::dsp;
using namespace lscatter::dsp::unit_literals;

TEST(Units, DbChainsGainsAndLosses) {
  const Db total = 3.0_db + 4.5_db - 2.5_db;
  EXPECT_DOUBLE_EQ(total.value(), 5.0);
  EXPECT_DOUBLE_EQ((-total).value(), -5.0);
  EXPECT_DOUBLE_EQ((2.0 * 3.0_db).value(), 6.0);
  EXPECT_DOUBLE_EQ((6.0_db / 2.0).value(), 3.0);
}

TEST(Units, DbLinearMatchesDbHelpers) {
  EXPECT_NEAR(Db{10.0}.linear(), db_to_lin(10.0), 1e-12);
  EXPECT_NEAR(Db{20.0}.amplitude(), db_to_amp(20.0), 1e-12);
  EXPECT_NEAR(Db::from_linear(100.0).value(), 20.0, 1e-12);
}

TEST(Units, DbmThroughGainStaysAbsolute) {
  const Dbm rx = 10.0_dbm - 40.0_db + 3.0_db;
  EXPECT_DOUBLE_EQ(rx.value(), -27.0);
  const Db ratio = 10.0_dbm - rx;
  EXPECT_DOUBLE_EQ(ratio.value(), 37.0);
}

TEST(Units, DbmMilliwattsRoundTrip) {
  EXPECT_NEAR(Dbm{0.0}.milliwatts(), 1.0, 1e-12);
  EXPECT_NEAR(Dbm{20.0}.milliwatts(), 100.0, 1e-9);
  EXPECT_NEAR(Dbm::from_milliwatts(2.0).value(), mw_to_dbm(2.0), 1e-12);
  EXPECT_NEAR(to_mw(from_mw(7.25)), 7.25, 1e-12);
}

TEST(Units, HzArithmeticAndRatios) {
  EXPECT_DOUBLE_EQ((15_khz * 1200.0).value(), 18e6);
  EXPECT_DOUBLE_EQ(20_mhz / 1.4_mhz, 20.0 / 1.4);
  EXPECT_DOUBLE_EQ((30.72_mhz - 0.72_mhz).value(), 30e6);
}

TEST(Units, SecondsTimesHzIsDimensionless) {
  // One LTE symbol: 66.7 us of 15 kHz subcarrier = one cycle.
  const double cycles = Seconds{1.0 / 15000.0} * 15_khz;
  EXPECT_NEAR(cycles, 1.0, 1e-12);
  EXPECT_NEAR(period(15_khz).value(), 66.67e-6, 0.01e-6);
  EXPECT_NEAR(133.4_us / 66.7_us, 2.0, 1e-9);
}

TEST(Units, SampleIndexIsAffine) {
  SampleIndex a{1000};
  const SampleIndex b = a + 2196;
  EXPECT_EQ(b.value(), 3196);
  EXPECT_EQ(b - a, 2196);
  a += 5;
  EXPECT_EQ(a.value(), 1005);
  EXPECT_LT(a, b);
}

TEST(Units, ComparisonsWork) {
  EXPECT_LT(3.0_db, 4.0_db);
  EXPECT_GT(10.0_dbm, Dbm{-90.0});
  EXPECT_EQ(1000.0_hz, 1_khz);
}

// Physically meaningless combinations must not compile. (SFINAE probes:
// the expression is ill-formed, so the specialization falls back to
// false_type.)
template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanMul : std::false_type {};
template <typename A, typename B>
struct CanMul<A, B,
              std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

static_assert(!CanAdd<Dbm, Dbm>::value,
              "adding two absolute powers in log domain is a unit error");
static_assert(!CanAdd<Db, double>::value, "raw doubles need explicit wrap");
static_assert(!CanAdd<Hz, Seconds>::value, "Hz + Seconds is meaningless");
static_assert(!CanMul<Db, Db>::value, "dB x dB has no physical meaning");
static_assert(CanAdd<Dbm, Db>::value);
static_assert(CanAdd<Db, Db>::value);
static_assert(CanMul<Hz, Seconds>::value);

TEST(Units, ZeroCost) {
  static_assert(sizeof(Db) == sizeof(double));
  static_assert(sizeof(Dbm) == sizeof(double));
  static_assert(sizeof(Hz) == sizeof(double));
  static_assert(sizeof(SampleIndex) == sizeof(std::int64_t));
  static_assert(std::is_trivially_copyable_v<Db>);
  static_assert(std::is_trivially_copyable_v<SampleIndex>);
}

}  // namespace
